// Parameterized property sweeps across the core invariants:
//  * inferred topology == ground truth on random topologies;
//  * mined automata accept every training run, across task/seed sweeps;
//  * closed pattern sets are minimal and support-consistent;
//  * a clean diff of a log against itself is empty for every Table II case.
#include <gtest/gtest.h>

#include "controller/controller.h"
#include "flowdiff/flowdiff.h"
#include "ingest/sanitizer.h"
#include "openflow/log_io.h"
#include "workload/app.h"
#include "workload/scenario.h"
#include "workload/tasks.h"

namespace flowdiff::core {
namespace {

// ---------------------------------------------------------------------------
// Topology inference property.

class TopologyInferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TopologyInferenceTest, InferredEdgesAreRealAdjacencies) {
  // Random tree of switches with hosts at the leaves: every inferred
  // switch-switch edge must be a physical adjacency, and every host must
  // attach to its real switch.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  sim::Topology topo;
  const int n_switches = 3 + GetParam() % 5;
  std::vector<SwitchId> switches;
  for (int i = 0; i < n_switches; ++i) {
    switches.push_back(topo.add_of_switch("sw" + std::to_string(i)));
    if (i > 0) {
      const auto parent = static_cast<std::size_t>(
          rng.uniform_int(0, i - 1));
      topo.connect(switches.back().value, switches[parent].value);
    }
  }
  std::vector<HostId> hosts;
  std::vector<SwitchId> attach;
  for (int i = 0; i < 6; ++i) {
    hosts.push_back(topo.add_host(
        "h" + std::to_string(i),
        Ipv4(10, 0, 0, static_cast<std::uint8_t>(i + 1))));
    const auto sw = switches[static_cast<std::size_t>(
        rng.uniform_int(0, n_switches - 1))];
    attach.push_back(sw);
    topo.connect(hosts.back().value, sw.value);
  }

  sim::Network net(topo, sim::NetworkConfig{});
  ctrl::Controller controller(net, ControllerId{0}, ctrl::ControllerConfig{});
  net.set_controller(&controller);
  // All-pairs probe flows.
  std::uint16_t sport = 40000;
  for (const HostId a : hosts) {
    for (const HostId b : hosts) {
      if (a == b) continue;
      net.start_flow(sim::FlowSpec{
          of::FlowKey{topo.host(a).ip, topo.host(b).ip, sport++, 80,
                      of::Proto::kTcp},
          1000, 5 * kMillisecond, {}, {}});
    }
  }
  net.events().run_until(30 * kSecond);

  const auto infra = extract_infra_signatures(parse_log(controller.log()));
  // Host attachments must match ground truth.
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const auto host_node = pt_host_node(topo.host(hosts[i]).ip);
    const auto sw_node = pt_switch_node(attach[i]);
    EXPECT_TRUE(infra.pt.graph.has_edge(host_node, sw_node) ||
                infra.pt.graph.has_edge(sw_node, host_node))
        << host_node << " should attach to " << sw_node;
  }
  // Every inferred switch-switch edge is a real adjacency.
  for (const auto& [from, to] : infra.pt.graph.edges()) {
    if (!from.starts_with("sw:") || !to.starts_with("sw:")) continue;
    const auto a = static_cast<sim::NodeIndex>(std::stoul(from.substr(3)));
    const auto b = static_cast<sim::NodeIndex>(std::stoul(to.substr(3)));
    EXPECT_NE(net.topology().link_between(a, b), nullptr)
        << from << "->" << to << " inferred but not physical";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, TopologyInferenceTest,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Mining properties across tasks and seeds.

struct MiningCase {
  int profile;  // 0 = migration, 1 = startup(0), 2 = stop, 3 = mount.
  bool masked;
  std::uint64_t seed;
};

class MiningPropertyTest : public ::testing::TestWithParam<MiningCase> {};

wl::TaskProfile profile_of(int id) {
  switch (id) {
    case 0:
      return wl::vm_migration_profile();
    case 1:
      return wl::vm_startup_profile(0);
    case 2:
      return wl::vm_stop_profile();
    default:
      return wl::mount_nfs_profile();
  }
}

TEST_P(MiningPropertyTest, AutomatonAcceptsAllTrainingRuns) {
  const auto param = GetParam();
  wl::ServiceCatalog services;
  services.nfs = Ipv4(10, 0, 10, 1);
  services.dns = Ipv4(10, 0, 10, 2);
  services.dhcp = Ipv4(10, 0, 10, 3);
  services.ntp = Ipv4(10, 0, 10, 4);
  services.netbios = Ipv4(10, 0, 10, 5);
  services.metadata = Ipv4(10, 0, 10, 6);
  services.apt_mirror = Ipv4(10, 0, 10, 7);

  Rng rng(param.seed);
  std::vector<of::FlowSequence> runs;
  for (int i = 0; i < 10; ++i) {
    runs.push_back(wl::expand_task(profile_of(param.profile),
                                   {Ipv4(10, 0, 1, 1), Ipv4(10, 0, 2, 1)},
                                   services, rng, 0)
                       .flows);
  }
  MiningConfig config;
  config.mask_subjects = param.masked;
  const auto specials = services.special_nodes();
  config.service_ips = {specials.begin(), specials.end()};
  const MinedTask mined = mine_task("task", runs, config);

  ASSERT_FALSE(mined.automaton.empty());
  for (const auto& filtered : mined.filtered_runs) {
    EXPECT_TRUE(mined.automaton.accepts(filtered));
  }
  // Closed-set property: no pattern is a contiguous subsequence of a longer
  // pattern with identical support.
  for (const auto& p : mined.patterns) {
    for (const auto& q : mined.patterns) {
      if (q.tokens.size() <= p.tokens.size() || q.support != p.support) {
        continue;
      }
      const bool contained =
          std::search(q.tokens.begin(), q.tokens.end(), p.tokens.begin(),
                      p.tokens.end()) != q.tokens.end();
      EXPECT_FALSE(contained)
          << "pattern subsumed by longer equal-support pattern";
    }
  }
  // Support is a valid count.
  for (const auto& p : mined.patterns) {
    EXPECT_GE(p.support, static_cast<int>(0.6 * 10));
    EXPECT_LE(p.support, 10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TasksAndSeeds, MiningPropertyTest,
    ::testing::Values(MiningCase{0, false, 1}, MiningCase{0, true, 2},
                      MiningCase{1, false, 3}, MiningCase{1, true, 4},
                      MiningCase{2, false, 5}, MiningCase{2, true, 6},
                      MiningCase{3, false, 7}, MiningCase{3, true, 8},
                      MiningCase{0, true, 9}, MiningCase{1, true, 10}));

// ---------------------------------------------------------------------------
// Self-diff property across Table II cases.

class SelfDiffTest : public ::testing::TestWithParam<int> {};

TEST_P(SelfDiffTest, ModelDiffedAgainstItselfIsEmpty) {
  // Whatever the deployment, diffing a model against itself must be clean
  // — the zero-false-positive floor of the whole pipeline.
  wl::LabScenario lab = wl::build_lab_scenario();
  sim::Network net(lab.topology, sim::NetworkConfig{});
  ctrl::Controller controller(net, ControllerId{0}, ctrl::ControllerConfig{});
  net.set_controller(&controller);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::vector<std::unique_ptr<wl::MultiTierApp>> apps;
  for (const auto& spec : wl::table2_apps(GetParam(), lab)) {
    apps.push_back(std::make_unique<wl::MultiTierApp>(net, spec,
                                                      &lab.services,
                                                      rng.fork()));
  }
  for (auto& app : apps) app->start(0, 25 * kSecond);
  net.events().run_until(40 * kSecond);

  FlowDiffConfig config;
  const auto specials = lab.services.special_nodes();
  config.set_special_nodes(std::set<Ipv4>(specials.begin(), specials.end()));
  const FlowDiff flowdiff(config);
  const auto model = flowdiff.model(controller.log());
  const auto report = flowdiff.diff(model, model);
  EXPECT_TRUE(report.changes.empty());
  EXPECT_TRUE(report.clean());
}

INSTANTIATE_TEST_SUITE_P(Table2Cases, SelfDiffTest, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Sanitizer restoration property: ANY permutation that displaces each event
// by at most the lateness horizon is fully restored — the sanitized stream
// equals the original, with zero hard-evidence counters.

class SanitizerRestorationTest : public ::testing::TestWithParam<int> {};

TEST_P(SanitizerRestorationTest, BoundedDisplacementIsFullyRestored) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 1);
  // Events strictly 10 ms apart, so a displacement budget in *slots* maps
  // directly to a displacement bound in event time.
  std::vector<of::ControlEvent> ordered;
  for (int i = 0; i < 300; ++i) {
    of::PacketIn pin;
    pin.sw = SwitchId{1};
    pin.in_port = PortId{1};
    pin.key = of::FlowKey{Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2),
                          static_cast<std::uint16_t>(40000 + i), 80,
                          of::Proto::kTcp};
    pin.flow_uid = static_cast<std::uint64_t>(i + 1);
    ordered.push_back(
        of::ControlEvent{i * 10 * kMillisecond, ControllerId{0}, pin});
  }
  // Random local shuffle: each event trades places within a ±5-slot
  // neighborhood (50 ms displacement, far inside the 1 s horizon).
  std::vector<of::ControlEvent> shuffled = ordered;
  for (std::size_t i = 0; i + 1 < shuffled.size(); ++i) {
    const auto span = static_cast<std::size_t>(rng.uniform_int(0, 5));
    const std::size_t j = std::min(i + span, shuffled.size() - 1);
    std::swap(shuffled[i], shuffled[j]);
  }

  const auto sanitized = ingest::sanitize_log(shuffled);
  ASSERT_EQ(sanitized.log.size(), ordered.size());
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(of::serialize_event(sanitized.log.events()[i]),
              of::serialize_event(ordered[i]));
  }
  EXPECT_EQ(sanitized.quality.late_dropped, 0u);
  EXPECT_EQ(sanitized.quality.duplicates, 0u);
  EXPECT_EQ(sanitized.quality.truncated, 0u);
  EXPECT_FALSE(sanitized.quality.degraded());

  // Idempotence: sanitizing the restored stream changes nothing.
  const auto again = ingest::sanitize_log(sanitized.log.events());
  EXPECT_EQ(of::serialize(again.log), of::serialize(sanitized.log));
  EXPECT_EQ(again.quality.reordered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, SanitizerRestorationTest,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace flowdiff::core
