#include "workload/app.h"

#include <algorithm>

namespace flowdiff::wl {

struct MultiTierApp::RequestCtx {
  /// Chosen node per tier; filled in as the request advances.
  std::vector<HostId> nodes;
  /// Forward flow key per hop (nodes[i] -> nodes[i+1]).
  std::vector<of::FlowKey> hop_keys;
  std::size_t depth = 0;  ///< Tier currently holding the request.
};

MultiTierApp::MultiTierApp(sim::Network& net, AppSpec spec,
                           const ServiceCatalog* services, Rng rng)
    : net_(net), spec_(std::move(spec)), services_(services), rng_(rng) {
  rr_counters_.assign(spec_.tiers.size(), 0);
}

Ipv4 MultiTierApp::ip_of(HostId h) const {
  return net_.topology().host(h).ip;
}

SimDuration MultiTierApp::sample_proc(const TierSpec& tier) {
  const double d = rng_.normal(static_cast<double>(tier.proc_mean),
                               static_cast<double>(tier.proc_jitter));
  return std::max<SimDuration>(static_cast<SimDuration>(d), kMillisecond);
}

HostId MultiTierApp::pick_node(std::size_t tier_idx,
                               std::size_t upstream_pos) {
  const TierSpec& tier = spec_.tiers[tier_idx];
  if (tier.pin_upstream) {
    return tier.nodes[std::min(upstream_pos, tier.nodes.size() - 1)];
  }
  switch (tier.lb) {
    case TierSpec::Lb::kRoundRobin:
      return tier.nodes[rr_counters_[tier_idx]++ % tier.nodes.size()];
    case TierSpec::Lb::kUniform:
      return tier.nodes[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(tier.nodes.size()) - 1))];
    case TierSpec::Lb::kWeighted: {
      double total = 0.0;
      for (double w : tier.lb_weights) total += w;
      double draw = rng_.uniform(0.0, total);
      for (std::size_t i = 0; i < tier.nodes.size(); ++i) {
        draw -= i < tier.lb_weights.size() ? tier.lb_weights[i] : 0.0;
        if (draw <= 0.0) return tier.nodes[i];
      }
      return tier.nodes.back();
    }
  }
  return tier.nodes.front();
}

void MultiTierApp::start(SimTime begin, SimTime end) {
  for (std::size_t c = 0; c < spec_.tiers.front().nodes.size(); ++c) {
    const double rate =
        c < spec_.client_rates_per_min.size() ? spec_.client_rates_per_min[c]
                                              : 60.0;
    if (rate <= 0.0) continue;
    const double mean_gap_us = 60.0 * 1e6 / rate;
    // First arrival staggered into the window.
    const SimTime first =
        begin + static_cast<SimDuration>(rng_.exponential(mean_gap_us));
    if (first >= end) continue;
    net_.events().schedule(first, [this, c, end] {
      issue_request(c);
      schedule_arrivals(c, end);
    });
  }
}

void MultiTierApp::schedule_arrivals(std::size_t client_idx, SimTime end) {
  const double rate = client_idx < spec_.client_rates_per_min.size()
                          ? spec_.client_rates_per_min[client_idx]
                          : 60.0;
  const double mean_gap_us = 60.0 * 1e6 / rate;
  const SimTime next =
      net_.now() + static_cast<SimDuration>(rng_.exponential(mean_gap_us));
  if (next >= end) return;
  net_.events().schedule(next, [this, client_idx, end] {
    issue_request(client_idx);
    schedule_arrivals(client_idx, end);
  });
}

void MultiTierApp::issue_request(std::size_t client_idx) {
  auto ctx = std::make_shared<RequestCtx>();
  ctx->nodes.push_back(spec_.tiers.front().nodes[client_idx]);

  if (services_ != nullptr && rng_.bernoulli(spec_.dns_lookup_prob)) {
    // Fire-and-forget DNS lookup; the request proceeds regardless.
    const Ipv4 client_ip = ip_of(ctx->nodes.front());
    const of::FlowKey dns_key = pool_.get(client_ip, services_->dns, kPortDns,
                                          0.0, rng_, of::Proto::kUdp);
    sim::FlowSpec dns;
    dns.key = dns_key;
    dns.bytes = 120;
    dns.duration = kMillisecond;
    net_.start_flow(std::move(dns));
  }
  advance(std::move(ctx));
}

void MultiTierApp::advance(std::shared_ptr<RequestCtx> ctx) {
  const std::size_t from_tier = ctx->depth;
  const std::size_t to_tier = from_tier + 1;
  if (to_tier >= spec_.tiers.size()) {
    // Reached the last tier: replicate (if configured), then respond.
    if (spec_.slave_db) {
      const HostId master = ctx->nodes.back();
      sim::FlowSpec repl;
      repl.key = pool_.get(ip_of(master), ip_of(*spec_.slave_db),
                           spec_.slave_port, 0.8, rng_);
      repl.bytes = spec_.request_bytes;
      repl.duration = spec_.request_duration;
      net_.start_flow(std::move(repl));
    }
    unwind(std::move(ctx), spec_.tiers.size() - 1);
    return;
  }

  const TierSpec& from = spec_.tiers[from_tier];
  const HostId from_node = ctx->nodes.back();
  // Position of the serving node within its tier, for pinned downstreams.
  const auto& from_nodes = spec_.tiers[from_tier].nodes;
  const std::size_t from_pos = static_cast<std::size_t>(
      std::find(from_nodes.begin(), from_nodes.end(), from_node) -
      from_nodes.begin());
  const HostId to_node = pick_node(to_tier, from_pos);
  ctx->nodes.push_back(to_node);

  double reuse = from.reuse_prob;
  if (from_tier >= 1) {
    const HostId upstream = ctx->nodes[from_tier - 1];
    auto it = from.reuse_by_upstream.find(upstream.value);
    if (it != from.reuse_by_upstream.end()) reuse = it->second;
  }

  const of::FlowKey key =
      pool_.get(ip_of(from_node), ip_of(to_node),
                spec_.tiers[to_tier].service_port, reuse, rng_);
  ctx->hop_keys.push_back(key);

  sim::FlowSpec flow;
  flow.key = key;
  flow.bytes = spec_.request_bytes;
  flow.duration = spec_.request_duration;
  flow.on_delivered = [this, ctx, to_tier](const sim::DeliveryInfo&) {
    ctx->depth = to_tier;
    const SimDuration proc = sample_proc(spec_.tiers[to_tier]);
    net_.events().schedule_in(proc, [this, ctx] { advance(ctx); });
  };
  flow.on_failed = [this, ctx](SimTime) {
    ++failed_;
    // Drop the cached connection so retries open fresh ones.
    if (!ctx->hop_keys.empty()) {
      const auto& k = ctx->hop_keys.back();
      pool_.invalidate(k.src_ip, k.dst_ip, k.dst_port);
    }
  };
  net_.start_flow(std::move(flow));
}

void MultiTierApp::unwind(std::shared_ptr<RequestCtx> ctx, std::size_t depth) {
  if (depth == 0 || ctx->hop_keys.empty()) {
    ++completed_;
    return;
  }
  // Response travels on the reverse of the forward hop's connection.
  const of::FlowKey key = ctx->hop_keys[depth - 1].reverse();
  sim::FlowSpec flow;
  flow.key = key;
  flow.bytes = spec_.response_bytes;
  flow.duration = spec_.response_duration;
  flow.on_delivered = [this, ctx, depth](const sim::DeliveryInfo&) {
    unwind(ctx, depth - 1);
  };
  flow.on_failed = [this](SimTime) { ++failed_; };
  net_.start_flow(std::move(flow));
}

}  // namespace flowdiff::wl
