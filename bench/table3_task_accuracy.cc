// Table III reproduction: accuracy of task-signature matching on the
// EC2-style VM startup experiment.
//
// Four VM images (three "Amazon AMI" variants sharing a base OS, one
// "Ubuntu") are each booted 50 times to learn startup automata — once with
// literal IPs (unmasked) and once with the VM masked as a positional
// variable. True positives: fresh restarts of the same VM matched against
// its own automaton. False positives: restarts of the *other* VMs matched
// against it (only meaningful when masked; unmasked automata are bound to
// the training VM's address).
#include <cstdio>

#include "flowdiff/task_mining.h"
#include "util/table.h"
#include "workload/tasks.h"

namespace flowdiff {
namespace {

wl::ServiceCatalog ec2_services() {
  wl::ServiceCatalog s;
  s.dns = Ipv4(172, 16, 0, 23);
  s.nfs = Ipv4(172, 16, 0, 10);
  s.dhcp = Ipv4(172, 16, 0, 1);
  s.ntp = Ipv4(172, 16, 0, 2);
  s.netbios = Ipv4(172, 16, 0, 3);
  s.metadata = Ipv4(169, 254, 169, 254);
  s.apt_mirror = Ipv4(172, 16, 0, 80);
  return s;
}

struct Vm {
  const char* ami_name;
  const char* kind;
  int variant;
  Ipv4 ip;
  int restarts;  ///< Test restarts, as in the paper's TP columns.
};

int run() {
  const auto services = ec2_services();
  std::set<Ipv4> service_ips;
  for (const Ipv4 ip : services.special_nodes()) service_ips.insert(ip);

  const std::vector<Vm> vms = {
      {"i-3486634d", "AMI", 0, Ipv4(10, 200, 1, 15), 20},
      {"i-5d021f3b", "AMI", 1, Ipv4(10, 200, 2, 77), 20},
      {"i-c5ebf1a3", "Ubuntu", 3, Ipv4(10, 200, 3, 42), 5},
      {"i-d55066b3", "AMI", 2, Ipv4(10, 200, 4, 9), 20},
  };
  constexpr int kTrainingRuns = 50;

  Rng rng(2013);
  auto boot = [&](const Vm& vm, SimTime t0) {
    return wl::expand_task(wl::vm_startup_profile(vm.variant), {vm.ip},
                           services, rng, t0)
        .flows;
  };

  // Learn both automata per VM from 50 boots.
  std::vector<core::TaskAutomaton> unmasked;
  std::vector<core::TaskAutomaton> masked;
  for (const auto& vm : vms) {
    std::vector<of::FlowSequence> runs;
    for (int i = 0; i < kTrainingRuns; ++i) runs.push_back(boot(vm, 0));
    core::MiningConfig config;
    config.service_ips = service_ips;
    config.mask_subjects = false;
    unmasked.push_back(
        core::mine_task(std::string("startup_") + vm.ami_name, runs, config)
            .automaton);
    config.mask_subjects = true;
    masked.push_back(
        core::mine_task(std::string("startup_") + vm.ami_name, runs, config)
            .automaton);
  }

  core::DetectorConfig det_config;
  det_config.service_ips = service_ips;

  auto matches = [&](const core::TaskAutomaton& automaton,
                     const of::FlowSequence& log) {
    const core::TaskDetector detector({automaton}, det_config);
    return !detector.detect(log).empty();
  };

  std::printf("=== Table III: Accuracy of task signature matching ===\n");
  std::printf("(%d training boots per VM; TP over restarts of the same VM,\n"
              " FP over restarts of every other VM, masked automata)\n\n",
              kTrainingRuns);

  TextTable table({"ID", "AMI name", "TP (not masked)", "TP (masked)",
                   "FP (masked)"});
  int id = 1;
  for (std::size_t v = 0; v < vms.size(); ++v) {
    int tp_unmasked = 0;
    int tp_masked = 0;
    for (int r = 0; r < vms[v].restarts; ++r) {
      const auto log = boot(vms[v], 0);
      if (matches(unmasked[v], log)) ++tp_unmasked;
      if (matches(masked[v], log)) ++tp_masked;
    }
    int fp = 0;
    int fp_trials = 0;
    int fp_unmasked = 0;
    for (std::size_t other = 0; other < vms.size(); ++other) {
      if (other == v) continue;
      for (int r = 0; r < vms[other].restarts; ++r) {
        const auto log = boot(vms[other], 0);
        ++fp_trials;
        if (matches(masked[v], log)) ++fp;
        if (matches(unmasked[v], log)) ++fp_unmasked;
      }
    }
    table.add_row({std::to_string(id++),
                   std::string(vms[v].ami_name) + " (" + vms[v].kind + ")",
                   std::to_string(tp_unmasked) + "/" +
                       std::to_string(vms[v].restarts),
                   std::to_string(tp_masked) + "/" +
                       std::to_string(vms[v].restarts),
                   std::to_string(fp) + "/" + std::to_string(fp_trials)});
    if (fp_unmasked != 0) {
      std::printf("WARNING: unmasked automaton %zu matched another VM "
                  "(%d times) — should never happen\n",
                  v, fp_unmasked);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper's shape: near-perfect TP; zero FP unmasked; low but nonzero\n"
      "FP between masked AMI images (shared base OS); the Ubuntu image\n"
      "never cross-matches an AMI automaton and vice versa.\n");
  return 0;
}

}  // namespace
}  // namespace flowdiff

int main() { return flowdiff::run(); }
