// Fig. 9 reproduction: how loss and server logging move the byte-count and
// delay CDFs of a four-node three-tier application (one web server, two
// application servers, one database server).
//
//  (a) CDF of per-entry byte counts on the web->app edges: vanilla vs loss.
//  (b) CDF of in/out delays at the application servers: vanilla vs logging
//      vs loss.
#include <cstdio>
#include <vector>

#include "controller/controller.h"
#include "faults/faults.h"
#include "flowdiff/log_model.h"
#include "util/stats.h"
#include "workload/app.h"
#include "workload/scenario.h"

namespace flowdiff {
namespace {

struct RunResult {
  std::vector<double> bytes;      ///< FlowRemoved byte counts, web->app.
  std::vector<double> delays_ms;  ///< in->out delays at app servers.
};

RunResult run_case(const char* mode) {
  wl::LabScenario lab = wl::build_lab_scenario();
  sim::NetworkConfig net_config;
  net_config.idle_timeout = 2 * kSecond;
  sim::Network net(lab.topology, net_config);
  ctrl::Controller controller(net, ControllerId{0}, ctrl::ControllerConfig{});
  net.set_controller(&controller);

  // The paper's illustration app: S21 -> S1(web) -> {S3, S11}(app) -> S8(db).
  wl::AppSpec spec;
  spec.name = "fig9";
  wl::TierSpec clients;
  clients.nodes = {lab.host("S21")};
  spec.tiers.push_back(clients);
  wl::TierSpec web;
  web.nodes = {lab.host("S1")};
  web.service_port = 80;
  web.proc_mean = 6 * kMillisecond;
  spec.tiers.push_back(web);
  wl::TierSpec app;
  app.nodes = {lab.host("S3"), lab.host("S11")};
  app.service_port = 8009;
  app.proc_mean = 30 * kMillisecond;
  app.lb = wl::TierSpec::Lb::kRoundRobin;
  spec.tiers.push_back(app);
  wl::TierSpec db;
  db.nodes = {lab.host("S8")};
  db.service_port = 3306;
  db.proc_mean = 10 * kMillisecond;
  spec.tiers.push_back(db);
  spec.client_rates_per_min = {420};
  spec.request_bytes = 6000;  // ~4 packets, so loss gets retransmissions.

  std::vector<std::unique_ptr<faults::FaultInjector>> active;
  if (std::string(mode) == "loss") {
    // 10% loss on both web<->app paths (the paper used 1% with a real TCP
    // stack, whose window collapse amplifies small loss; the flow-level
    // model needs a higher raw rate for the same visible effect).
    std::vector<LinkId> links{
        net.topology().host(lab.host("S3")).links.front(),
        net.topology().host(lab.host("S11")).links.front()};
    active.push_back(
        std::make_unique<faults::LinkLossFault>(net, links, 0.10));
  } else if (std::string(mode) == "logging") {
    for (const char* server : {"S3", "S11"}) {
      active.push_back(std::make_unique<faults::ServerSlowdownFault>(
          net, lab.host(server), 60 * kMillisecond, "logging"));
    }
  }
  for (auto& fault : active) fault->apply();

  wl::MultiTierApp application(net, spec, &lab.services, Rng(9));
  application.start(0, 60 * kSecond);
  net.events().run_until(75 * kSecond);

  const core::ParsedLog parsed = core::parse_log(controller.log());
  RunResult result;
  const Ipv4 web_ip = lab.ip("S1");
  const Ipv4 apps[2] = {lab.ip("S3"), lab.ip("S11")};
  for (const auto& rec : parsed.removed) {
    for (const Ipv4 app_ip : apps) {
      if (rec.key.src_ip == web_ip && rec.key.dst_ip == app_ip) {
        result.bytes.push_back(static_cast<double>(rec.bytes));
      }
    }
  }
  // Delays: web->app flow start vs the triggered app->db flow start.
  std::vector<std::pair<SimTime, Ipv4>> in_flows;   // (ts, app server)
  std::vector<std::pair<SimTime, Ipv4>> out_flows;
  for (const auto& occ : parsed.occurrences) {
    for (const Ipv4 app_ip : apps) {
      if (occ.key.src_ip == web_ip && occ.key.dst_ip == app_ip) {
        in_flows.emplace_back(occ.first_ts, app_ip);
      }
      if (occ.key.src_ip == app_ip && occ.key.dst_ip == lab.ip("S8")) {
        out_flows.emplace_back(occ.first_ts, app_ip);
      }
    }
  }
  for (const auto& [t_in, server] : in_flows) {
    // Nearest subsequent out-flow from the same server.
    SimTime best = -1;
    for (const auto& [t_out, out_server] : out_flows) {
      if (out_server != server || t_out < t_in) continue;
      if (best < 0 || t_out < best) best = t_out;
    }
    if (best >= 0 && best - t_in < 500 * kMillisecond) {
      result.delays_ms.push_back(to_millis(best - t_in));
    }
  }
  return result;
}

void print_cdf(const char* label, const std::vector<double>& data) {
  std::printf("%s (n=%zu):\n  ", label, data.size());
  for (double p : {5, 10, 25, 50, 75, 90, 95, 99}) {
    std::printf("p%.0f=%.1f  ", p, percentile(data, p));
  }
  std::printf("\n");
}

int run() {
  std::printf("=== Fig. 9: impact of loss and logging ===\n\n");
  const RunResult vanilla = run_case("vanilla");
  const RunResult loss = run_case("loss");
  const RunResult logging = run_case("logging");

  std::printf("(a) Byte count of web->app flow entries (CDF quantiles)\n");
  print_cdf("  vanilla", vanilla.bytes);
  print_cdf("  loss   ", loss.bytes);
  RunningStats vanilla_bytes;
  RunningStats loss_bytes;
  for (double b : vanilla.bytes) vanilla_bytes.add(b);
  for (double b : loss.bytes) loss_bytes.add(b);
  std::printf("  -> mean bytes: %.0f vanilla vs %.0f loss (%.2fx; paper: "
              "loss curve sits right of vanilla)\n\n",
              vanilla_bytes.mean(), loss_bytes.mean(),
              loss_bytes.mean() / std::max(1.0, vanilla_bytes.mean()));

  std::printf("(b) Delay between incoming and outgoing flows at the app "
              "servers (ms)\n");
  print_cdf("  vanilla", vanilla.delays_ms);
  print_cdf("  logging", logging.delays_ms);
  print_cdf("  loss   ", loss.delays_ms);
  std::printf(
      "  -> logging shifts the whole distribution right (median %+.0fms), "
      "loss fattens the tail (p95 %+.0fms)\n",
      percentile(logging.delays_ms, 50) - percentile(vanilla.delays_ms, 50),
      percentile(loss.delays_ms, 95) - percentile(vanilla.delays_ms, 95));
  return 0;
}

}  // namespace
}  // namespace flowdiff

int main() { return flowdiff::run(); }
