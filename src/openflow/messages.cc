#include "openflow/messages.h"

namespace flowdiff::of {

const char* message_name(const ControlMessage& msg) {
  struct Visitor {
    const char* operator()(const PacketIn&) const { return "PacketIn"; }
    const char* operator()(const FlowMod&) const { return "FlowMod"; }
    const char* operator()(const PacketOut&) const { return "PacketOut"; }
    const char* operator()(const FlowRemoved&) const { return "FlowRemoved"; }
    const char* operator()(const EchoReply&) const { return "EchoReply"; }
    const char* operator()(const FlowStatsReply&) const {
      return "FlowStatsReply";
    }
  };
  return std::visit(Visitor{}, msg);
}

std::string ControlEvent::to_string() const {
  std::string out = std::to_string(ts) + "us " + message_name(msg);
  if (const auto* pin = std::get_if<PacketIn>(&msg)) {
    out += " sw=" + std::to_string(pin->sw.value) +
           " in_port=" + std::to_string(pin->in_port.value) + " " +
           pin->key.to_string();
  } else if (const auto* fm = std::get_if<FlowMod>(&msg)) {
    out += " sw=" + std::to_string(fm->sw.value) + " " +
           fm->match.to_string() +
           " out=" + std::to_string(fm->out_port.value);
  } else if (const auto* po = std::get_if<PacketOut>(&msg)) {
    out += " sw=" + std::to_string(po->sw.value) + " " + po->key.to_string();
  } else if (const auto* fr = std::get_if<FlowRemoved>(&msg)) {
    out += " sw=" + std::to_string(fr->sw.value) + " " +
           fr->match.to_string() + " bytes=" + std::to_string(fr->byte_count) +
           " pkts=" + std::to_string(fr->packet_count);
  } else if (const auto* fs = std::get_if<FlowStatsReply>(&msg)) {
    out += " sw=" + std::to_string(fs->sw.value) + " " +
           fs->match.to_string() +
           " bytes=" + std::to_string(fs->byte_count);
  }
  return out;
}

}  // namespace flowdiff::of
