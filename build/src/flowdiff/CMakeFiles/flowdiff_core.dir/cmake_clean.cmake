file(REMOVE_RECURSE
  "CMakeFiles/flowdiff_core.dir/app_groups.cc.o"
  "CMakeFiles/flowdiff_core.dir/app_groups.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/app_signatures.cc.o"
  "CMakeFiles/flowdiff_core.dir/app_signatures.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/diagnosis.cc.o"
  "CMakeFiles/flowdiff_core.dir/diagnosis.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/diff.cc.o"
  "CMakeFiles/flowdiff_core.dir/diff.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/flow_token.cc.o"
  "CMakeFiles/flowdiff_core.dir/flow_token.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/flowdiff.cc.o"
  "CMakeFiles/flowdiff_core.dir/flowdiff.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/infra_signatures.cc.o"
  "CMakeFiles/flowdiff_core.dir/infra_signatures.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/log_model.cc.o"
  "CMakeFiles/flowdiff_core.dir/log_model.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/model.cc.o"
  "CMakeFiles/flowdiff_core.dir/model.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/monitor.cc.o"
  "CMakeFiles/flowdiff_core.dir/monitor.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/task_automaton.cc.o"
  "CMakeFiles/flowdiff_core.dir/task_automaton.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/task_mining.cc.o"
  "CMakeFiles/flowdiff_core.dir/task_mining.cc.o.d"
  "CMakeFiles/flowdiff_core.dir/validate.cc.o"
  "CMakeFiles/flowdiff_core.dir/validate.cc.o.d"
  "libflowdiff_core.a"
  "libflowdiff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowdiff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
