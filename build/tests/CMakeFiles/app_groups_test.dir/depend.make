# Empty dependencies file for app_groups_test.
# This may be replaced when dependencies are built.
