# Empty dependencies file for flowdiff_workload.
# This may be replaced when dependencies are built.
