# Empty dependencies file for diagnose_congestion.
# This may be replaced when dependencies are built.
