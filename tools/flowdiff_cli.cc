// flowdiff — command-line front end to the library.
//
//   flowdiff summary <log> [--services FILE]       model one control log
//   flowdiff diff <baseline.log> <current.log>     diff two control logs
//        [--services FILE] [--task AUTOMATON]...
//   flowdiff mine <name> <run.flows>... [--mask]   learn a task automaton
//        [--services FILE] [--out FILE]
//   flowdiff detect <AUTOMATON>... --in <capture.flows> [--services FILE]
//   flowdiff monitor <log> [--window SECONDS] [--services FILE]
//        [--task AUTOMATON]... [--rolling] [--report FILE]
//   flowdiff report <log> [--window SECONDS] [--services FILE]
//        [--task AUTOMATON]... [--rolling] [--out FILE] [--html]
//   flowdiff explain <alarm-id> (--artifacts DIR | --from ADDR:PORT)
//
// Control logs use the openflow/log_io.h text format; flow-sequence files
// hold FLOW lines; automata use TaskAutomaton::serialize(). A services
// file lists special-purpose node IPs, one per line.
//
// Every subcommand accepts the global flags --workers=N (worker threads
// for model building; results are bit-identical at any count) and
// --artifacts=DIR, which collects every run artifact under one directory:
// stats.txt, trace.json, series.csv and (monitor/report) report.md. The
// older per-artifact flags --stats[=FILE], --trace[=FILE] and
// --series[=FILE] remain as aliases and override the corresponding
// artifacts path; `flowdiff help` documents the mapping. monitor/report
// runs with an artifacts directory also write DIR/provenance.json — the
// alarm provenance records `flowdiff explain` reads back.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "flowdiff/flowdiff.h"
#include "flowdiff/monitor.h"
#include "flowdiff/provenance.h"
#include "flowdiff/report.h"
#include "flowdiff/telemetry.h"
#include "obs/http_server.h"
#include "obs/obs.h"
#include "openflow/log_io.h"
#include "util/table.h"

namespace {

using namespace flowdiff;

int fail(const std::string& message) {
  std::fprintf(stderr, "flowdiff: %s\n", message.c_str());
  return 2;
}

void print_help(std::FILE* out) {
  std::fputs(
      "usage:\n"
      "  flowdiff summary <log> [--services FILE]\n"
      "  flowdiff diff <baseline.log> <current.log> [--services FILE] "
      "[--task FILE]...\n"
      "  flowdiff mine <name> <run.flows>... [--mask] [--services FILE] "
      "[--out FILE]\n"
      "  flowdiff detect <automaton>... --in <capture.flows> "
      "[--services FILE]\n"
      "  flowdiff monitor <log> [--window SECONDS] [--services FILE] "
      "[--task FILE]... [--rolling] [--pipeline DEPTH] [--sanitize] "
      "[--lateness SEC] [--listen ADDR:PORT] [--report FILE]\n"
      "  flowdiff report <log> [--window SECONDS] [--services FILE] "
      "[--task FILE]... [--rolling] [--pipeline DEPTH] [--sanitize] "
      "[--lateness SEC] [--listen ADDR:PORT] [--out FILE] [--html]\n"
      "  flowdiff explain <alarm-id> (--artifacts DIR | --from "
      "ADDR:PORT)\n"
      "  flowdiff help\n"
      "global flags (any subcommand):\n"
      "  --workers=N      worker threads for model building (default 0 = "
      "serial\n"
      "                   inline; any N produces bit-identical models)\n"
      "  --artifacts=DIR  write every run artifact into DIR (created if "
      "missing):\n"
      "                     DIR/stats.txt   metrics registry "
      "(--stats=DIR/stats.txt)\n"
      "                     DIR/trace.json  span tree "
      "(--trace=DIR/trace.json)\n"
      "                     DIR/series.csv  sampled series "
      "(--series=DIR/series.csv)\n"
      "                     DIR/report.md   run report, monitor/report "
      "only\n"
      "                                     (--report/--out "
      "DIR/report.md)\n"
      "                     DIR/provenance.json  alarm provenance "
      "records,\n"
      "                                     monitor/report only (read "
      "back by\n"
      "                                     `flowdiff explain`)\n"
      "                   the per-artifact aliases below override the\n"
      "                   corresponding DIR path when both are given\n"
      "  --stats[=FILE]   dump metrics after the run (.json/.prom/table "
      "by extension; default stderr)\n"
      "  --trace[=FILE]   dump the tracing span tree (.json for machine-"
      "readable; default stderr)\n"
      "  --series[=FILE]  dump sampled metric time series (.json else "
      "CSV; default stderr)\n"
      "monitor/report flags:\n"
      "  --pipeline DEPTH overlap window modeling with ingest on a "
      "pipeline\n"
      "                   thread; DEPTH bounds the backlog (0 = "
      "synchronous).\n"
      "                   Alarms and audits are identical either way.\n"
      "  --sanitize       run the log through the ingest sanitizer: the "
      "file is\n"
      "                   read in raw arrival order, duplicates and "
      "truncated\n"
      "                   records are dropped, bounded reordering is "
      "repaired,\n"
      "                   each window gets a stream-quality record, and "
      "alarms\n"
      "                   from over-corrupted signature families are "
      "suppressed\n"
      "                   (degraded mode). Clean logs are unaffected.\n"
      "  --lateness SEC   sanitizer reorder horizon in seconds (default 1; "
      "implies\n"
      "                   --sanitize)\n"
      "  --listen ADDR:PORT  serve the live telemetry plane over HTTP while "
      "the\n"
      "                   run is live (/metrics /healthz /series /recorder\n"
      "                   /audits /report; \":PORT\" binds all interfaces, "
      "port 0\n"
      "                   picks one). After the log is fed the process keeps\n"
      "                   serving until SIGINT/SIGTERM, then flushes the "
      "final\n"
      "                   window and writes its artifacts.\n"
      "explain flags:\n"
      "  --artifacts DIR  read DIR/provenance.json written by an earlier\n"
      "                   monitor/report run and print the record whose id\n"
      "                   matches <alarm-id> (the provenance id shown in "
      "the\n"
      "                   run report and on /provenance)\n"
      "  --from ADDR:PORT fetch the record from a live telemetry plane "
      "via\n"
      "                   GET /provenance?id=<alarm-id> instead\n"
      "exit status: 0 ok/clean, 1 unknown changes or alarms (diff, "
      "monitor, report), 2 usage or I/O error\n",
      out);
}

int usage() {
  print_help(stderr);
  return 2;
}

// --- global flags (--workers / --artifacts / --stats / --trace) -----------

struct GlobalOptions {
  bool stats = false;
  bool trace = false;
  bool series = false;
  std::string stats_path;     // empty => stderr
  std::string trace_path;     // empty => stderr
  std::string series_path;    // empty => stderr
  std::string artifacts_dir;  // empty => no artifact directory
  int workers = 0;            // FlowDiffConfig::parallelism
};

/// Set by main() before the subcommand runs; subcommands read the worker
/// count and the artifacts directory (for the default report path) here.
GlobalOptions g_opts;

/// Strips the global flags wherever they appear and enables the obs layer
/// if any artifact was requested. --artifacts=DIR is sugar for
/// --stats=DIR/stats.txt --trace=DIR/trace.json --series=DIR/series.csv
/// (+ a default report path in monitor/report); explicit per-artifact
/// flags win over the DIR-derived paths regardless of order.
GlobalOptions extract_global_options(std::vector<std::string>& args) {
  GlobalOptions opts;
  bool explicit_stats = false;
  bool explicit_trace = false;
  bool explicit_series = false;
  std::vector<std::string> kept;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--stats") {
      opts.stats = true;
    } else if (arg.rfind("--stats=", 0) == 0) {
      opts.stats = true;
      explicit_stats = true;
      opts.stats_path = arg.substr(std::strlen("--stats="));
    } else if (arg == "--trace") {
      opts.trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      opts.trace = true;
      explicit_trace = true;
      opts.trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--series") {
      opts.series = true;
    } else if (arg.rfind("--series=", 0) == 0) {
      opts.series = true;
      explicit_series = true;
      opts.series_path = arg.substr(std::strlen("--series="));
    } else if (arg.rfind("--artifacts=", 0) == 0) {
      opts.artifacts_dir = arg.substr(std::strlen("--artifacts="));
    } else if (arg == "--artifacts" && i + 1 < args.size()) {
      opts.artifacts_dir = args[++i];
    } else if (arg.rfind("--workers=", 0) == 0) {
      opts.workers = std::stoi(arg.substr(std::strlen("--workers=")));
    } else if (arg == "--workers" && i + 1 < args.size()) {
      opts.workers = std::stoi(args[++i]);
    } else {
      kept.push_back(arg);
    }
  }
  args = std::move(kept);
  if (!opts.artifacts_dir.empty()) {
    opts.stats = opts.trace = opts.series = true;
    const std::string dir = opts.artifacts_dir;
    if (!explicit_stats) opts.stats_path = dir + "/stats.txt";
    if (!explicit_trace) opts.trace_path = dir + "/trace.json";
    if (!explicit_series) opts.series_path = dir + "/series.csv";
  }
  if (opts.stats || opts.trace || opts.series) obs::set_enabled(true);
  return opts;
}

bool has_suffix(const std::string& str, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return str.size() >= n && str.compare(str.size() - n, n, suffix) == 0;
}

int emit(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::fputs(text.c_str(), stderr);
    return 0;
  }
  if (!of::write_file(path, text)) return fail("cannot write " + path);
  return 0;
}

/// Dumps the metrics registry and/or span tree after the subcommand ran.
/// Failures here degrade the exit code only if the run itself was clean.
int dump_observability(const GlobalOptions& opts) {
  int rc = 0;
  if (opts.stats) {
    const obs::Snapshot snap = obs::snapshot();
    std::string text;
    if (has_suffix(opts.stats_path, ".json")) {
      text = obs::render_json(snap);
    } else if (has_suffix(opts.stats_path, ".prom")) {
      text = obs::render_prometheus(snap);
    } else {
      text = obs::render_table(snap);
    }
    rc = emit(opts.stats_path, text);
  }
  if (opts.trace && rc == 0) {
    const auto records = obs::Trace::global().records();
    rc = emit(opts.trace_path, has_suffix(opts.trace_path, ".json")
                                   ? obs::render_span_json(records)
                                   : obs::render_span_tree(records));
  }
  if (opts.series && rc == 0) {
    const std::string text = has_suffix(opts.series_path, ".json")
                                 ? obs::render_series_json(
                                       obs::Sampler::global())
                                 : obs::render_series_csv(
                                       obs::Sampler::global());
    rc = emit(opts.series_path, text);
  }
  return rc;
}

std::optional<std::set<Ipv4>> load_services(const std::string& path) {
  const auto text = of::read_file(path);
  if (!text) return std::nullopt;
  std::set<Ipv4> services;
  std::size_t pos = 0;
  while (pos <= text->size()) {
    const auto end = text->find('\n', pos);
    const std::string line = text->substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    if (const auto ip = Ipv4::parse(line)) services.insert(*ip);
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return services;
}

std::optional<of::ControlLog> load_log(const std::string& path) {
  const auto text = of::read_file(path);
  if (!text) return std::nullopt;
  return of::parse_control_log(*text);
}

int cmd_summary(const std::vector<std::string>& args) {
  std::string services_path;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--services" && i + 1 < args.size()) {
      services_path = args[++i];
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 1) return usage();
  const auto log = load_log(positional[0]);
  if (!log) return fail("cannot load control log " + positional[0]);
  core::FlowDiffConfig config;
  config.parallelism = g_opts.workers;
  if (!services_path.empty()) {
    auto services = load_services(services_path);
    if (!services) return fail("cannot load services " + services_path);
    config.set_special_nodes(std::move(*services));
  }
  const core::FlowDiff flowdiff(config);
  const auto model = flowdiff.model(*log);
  std::printf("log: %zu events over %.1fs (%zu PacketIn, %zu FlowMod, "
              "%zu FlowRemoved)\n",
              log->size(), to_seconds(log->end_time() - log->begin_time()),
              log->count<of::PacketIn>(), log->count<of::FlowMod>(),
              log->count<of::FlowRemoved>());
  std::printf("application groups: %zu\n", model.groups.size());
  for (std::size_t g = 0; g < model.groups.size(); ++g) {
    const auto& group = model.groups[g];
    std::printf("  group %zu: %zu hosts, %zu edges, %zu dd-pairs, "
                "%zu pc-pairs\n",
                g, group.sig.members.size(),
                group.sig.cg.graph.edge_count(),
                group.sig.dd.per_pair.size(), group.sig.pc.rho.size());
    for (const Ipv4 ip : group.sig.members) {
      std::printf("    %s\n", ip.to_string().c_str());
    }
  }
  std::printf("infrastructure: %zu topology edges, %zu ISL pairs, "
              "CRT mean %.3fms over %zu samples\n",
              model.infra.pt.graph.edge_count(),
              model.infra.isl.latency_ms.size(),
              model.infra.crt.response_ms.mean(),
              model.infra.crt.response_ms.count());
  return 0;
}

int cmd_diff(std::vector<std::string> args) {
  std::string services_path;
  std::vector<std::string> task_paths;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--services" && i + 1 < args.size()) {
      services_path = args[++i];
    } else if (args[i] == "--task" && i + 1 < args.size()) {
      task_paths.push_back(args[++i]);
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 2) return usage();

  core::FlowDiffConfig config;
  config.parallelism = g_opts.workers;
  if (!services_path.empty()) {
    auto services = load_services(services_path);
    if (!services) return fail("cannot load services " + services_path);
    config.set_special_nodes(std::move(*services));
  }
  std::vector<core::TaskAutomaton> tasks;
  for (const auto& path : task_paths) {
    const auto text = of::read_file(path);
    if (!text) return fail("cannot read automaton " + path);
    auto automaton = core::TaskAutomaton::parse(*text);
    if (!automaton) return fail("malformed automaton " + path);
    tasks.push_back(std::move(*automaton));
  }

  const auto baseline = load_log(positional[0]);
  const auto current = load_log(positional[1]);
  if (!baseline || !current) return fail("cannot load control logs");

  const core::FlowDiff flowdiff(config);
  const auto report = flowdiff.diff(flowdiff.model(*baseline),
                                    flowdiff.model(*current), tasks);
  std::fputs(report.render().c_str(), stdout);
  return report.clean() ? 0 : 1;
}

int cmd_mine(std::vector<std::string> args) {
  if (args.empty()) return usage();
  const std::string name = args.front();
  args.erase(args.begin());
  bool mask = false;
  std::string services_path;
  std::string out_path;
  std::vector<std::string> run_paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--mask") {
      mask = true;
    } else if (args[i] == "--services" && i + 1 < args.size()) {
      services_path = args[++i];
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      run_paths.push_back(args[i]);
    }
  }
  if (run_paths.empty()) return usage();

  core::MiningConfig mining;
  mining.mask_subjects = mask;
  if (!services_path.empty()) {
    auto services = load_services(services_path);
    if (!services) return fail("cannot load services " + services_path);
    mining.service_ips = std::move(*services);
  }
  std::vector<of::FlowSequence> runs;
  for (const auto& path : run_paths) {
    const auto text = of::read_file(path);
    if (!text) return fail("cannot read run " + path);
    auto flows = of::parse_flow_sequence(*text);
    if (!flows) return fail("malformed flow sequence " + path);
    runs.push_back(std::move(*flows));
  }

  const auto mined = core::mine_task(name, runs, mining);
  std::fprintf(stderr,
               "mined '%s': %zu common flows, %zu closed patterns, "
               "%zu automaton states\n",
               name.c_str(), mined.common_flows.size(),
               mined.patterns.size(), mined.automaton.state_count());
  const std::string serialized = mined.automaton.serialize();
  if (out_path.empty()) {
    std::fputs(serialized.c_str(), stdout);
  } else if (!of::write_file(out_path, serialized)) {
    return fail("cannot write " + out_path);
  }
  return 0;
}

int cmd_detect(std::vector<std::string> args) {
  std::string services_path;
  std::string capture_path;
  std::vector<std::string> automaton_paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--services" && i + 1 < args.size()) {
      services_path = args[++i];
    } else if (args[i] == "--in" && i + 1 < args.size()) {
      capture_path = args[++i];
    } else {
      automaton_paths.push_back(args[i]);
    }
  }
  if (automaton_paths.empty() || capture_path.empty()) return usage();

  core::DetectorConfig config;
  if (!services_path.empty()) {
    auto services = load_services(services_path);
    if (!services) return fail("cannot load services " + services_path);
    config.service_ips = std::move(*services);
  }
  std::vector<core::TaskAutomaton> automata;
  for (const auto& path : automaton_paths) {
    const auto text = of::read_file(path);
    if (!text) return fail("cannot read automaton " + path);
    auto automaton = core::TaskAutomaton::parse(*text);
    if (!automaton) return fail("malformed automaton " + path);
    automata.push_back(std::move(*automaton));
  }
  const auto capture_text = of::read_file(capture_path);
  if (!capture_text) return fail("cannot read capture " + capture_path);
  const auto capture = of::parse_flow_sequence(*capture_text);
  if (!capture) return fail("malformed capture " + capture_path);

  const core::TaskDetector detector(automata, config);
  const auto found = detector.detect(*capture);
  for (const auto& occ : found) {
    std::printf("%-20s t=[%.3fs, %.3fs] hosts:", occ.task.c_str(),
                to_seconds(occ.begin), to_seconds(occ.end));
    for (const Ipv4 ip : occ.involved) {
      std::printf(" %s", ip.to_string().c_str());
    }
    std::printf("\n");
  }
  std::fprintf(stderr, "%zu occurrence(s)\n", found.size());
  return 0;
}

// Shared argument parsing for `monitor` and `report` (same pipeline, a
// different artifact at the end).
struct MonitorCliArgs {
  core::MonitorConfig config;
  std::string log_path;
  std::string report_path;  ///< monitor --report FILE (empty = none)
  std::string out_path;     ///< report --out FILE (empty = stdout)
  bool html = false;        ///< report --html (or --report *.html)
  std::string listen;       ///< --listen ADDR:PORT (empty = no plane)
};

std::optional<MonitorCliArgs> parse_monitor_args(
    const std::vector<std::string>& args, bool report_mode) {
  MonitorCliArgs parsed;
  std::string services_path;
  std::vector<std::string> task_paths;
  std::vector<std::string> positional;
  double window_sec = 30.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--services" && i + 1 < args.size()) {
      services_path = args[++i];
    } else if (args[i] == "--task" && i + 1 < args.size()) {
      task_paths.push_back(args[++i]);
    } else if (args[i] == "--window" && i + 1 < args.size()) {
      window_sec = std::stod(args[++i]);
    } else if (args[i] == "--rolling") {
      parsed.config.rolling_baseline = true;
    } else if (args[i] == "--pipeline" && i + 1 < args.size()) {
      parsed.config.pipeline_depth =
          static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (args[i] == "--sanitize") {
      parsed.config.sanitize = true;
    } else if (args[i] == "--lateness" && i + 1 < args.size()) {
      parsed.config.sanitize = true;
      parsed.config.ingest.lateness_horizon =
          from_seconds(std::stod(args[++i]));
    } else if (args[i] == "--listen" && i + 1 < args.size()) {
      parsed.listen = args[++i];
    } else if (args[i].rfind("--listen=", 0) == 0) {
      parsed.listen = args[i].substr(std::strlen("--listen="));
    } else if (!report_mode && args[i] == "--report" && i + 1 < args.size()) {
      parsed.report_path = args[++i];
    } else if (report_mode && args[i] == "--out" && i + 1 < args.size()) {
      parsed.out_path = args[++i];
    } else if (report_mode && args[i] == "--html") {
      parsed.html = true;
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 1) return std::nullopt;
  parsed.log_path = positional[0];
  parsed.config.window = from_seconds(window_sec);
  parsed.config.flowdiff.parallelism = g_opts.workers;
  // --artifacts=DIR supplies the default report destination; an explicit
  // --report/--out still wins.
  if (!g_opts.artifacts_dir.empty()) {
    const std::string fallback = g_opts.artifacts_dir + "/report.md";
    if (report_mode && parsed.out_path.empty()) parsed.out_path = fallback;
    if (!report_mode && parsed.report_path.empty()) {
      parsed.report_path = fallback;
    }
  }
  if (!services_path.empty()) {
    auto services = load_services(services_path);
    if (!services) return std::nullopt;
    parsed.config.flowdiff.set_special_nodes(std::move(*services));
  }
  for (const auto& path : task_paths) {
    const auto text = of::read_file(path);
    if (!text) return std::nullopt;
    auto automaton = core::TaskAutomaton::parse(*text);
    if (!automaton) return std::nullopt;
    parsed.config.tasks.push_back(std::move(*automaton));
  }
  return parsed;
}

/// Feeds the log file into the monitor and (by default) flushes it. With
/// --sanitize the file is parsed in raw arrival order (a corrupted
/// capture's reordering must reach the sanitizer); otherwise through the
/// time-sorted ControlLog as before. A --listen run defers the flush until
/// shutdown so /healthz keeps seeing a live partial window.
int feed_monitor_from_file(core::SlidingMonitor& monitor,
                           const MonitorCliArgs& parsed, bool flush = true) {
  const auto text = of::read_file(parsed.log_path);
  if (!text) return fail("cannot load control log " + parsed.log_path);
  if (parsed.config.sanitize) {
    const auto events = of::parse_control_events(*text);
    if (!events) return fail("malformed control log " + parsed.log_path);
    monitor.feed(*events);
  } else {
    const auto log = of::parse_control_log(*text);
    if (!log) return fail("malformed control log " + parsed.log_path);
    monitor.feed(*log);
  }
  if (flush) monitor.flush();
  return 0;
}

// --- telemetry plane + graceful shutdown (--listen) ------------------------

volatile std::sig_atomic_t g_shutdown = 0;

void on_shutdown_signal(int) { g_shutdown = 1; }

/// SIGINT/SIGTERM request a graceful shutdown: the main thread notices the
/// flag, flushes the final window, stops the plane, and writes artifacts —
/// none of which is legal in the handler itself.
void install_shutdown_signals() {
  struct sigaction action = {};
  action.sa_handler = on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void wait_for_shutdown() {
  while (g_shutdown == 0) {
    struct timespec delay = {0, 50 * 1000 * 1000};  // 50ms
    nanosleep(&delay, nullptr);
  }
}

/// Parses --listen, starts the plane, and announces the bound endpoint on
/// stdout (tests and scripts parse that line to find an ephemeral port).
int start_telemetry_plane(std::optional<core::TelemetryPlane>& plane,
                          const std::string& listen) {
  const auto addr = obs::parse_listen_address(listen);
  if (!addr) return fail("malformed --listen address: " + listen);
  core::TelemetryConfig config;
  config.http.address = addr->first;
  config.http.port = addr->second;
  plane.emplace(std::move(config));
  if (!plane->start()) {
    return fail("cannot start telemetry plane on " + listen + ": " +
                plane->last_error());
  }
  // Handlers first, announcement second: a supervisor that signals the
  // moment it sees the line must never catch the default disposition.
  install_shutdown_signals();
  std::printf("flowdiff: telemetry plane listening on http://%s:%u\n",
              addr->first.c_str(), static_cast<unsigned>(plane->port()));
  std::fflush(stdout);
  return 0;
}

/// Renders the joined run report for a finished monitor and writes it to
/// `path` (or stdout when empty).
int write_run_report(const core::SlidingMonitor& monitor,
                     const std::string& path, bool html) {
  core::RunReportOptions options;
  options.html = html || has_suffix(path, ".html");
  const std::string report = core::render_run_report(
      monitor, obs::Sampler::global(), obs::FlightRecorder::global(),
      options);
  if (path.empty()) {
    std::fputs(report.c_str(), stdout);
    return 0;
  }
  if (!of::write_file(path, report)) return fail("cannot write " + path);
  std::fprintf(stderr, "report written to %s\n", path.c_str());
  return 0;
}

/// Writes the monitor's provenance ring to DIR/provenance.json when an
/// artifacts directory was requested; `flowdiff explain --artifacts DIR`
/// reads it back. A run with no records still writes the (empty)
/// collection so explain can distinguish "no alarms" from "no artifact".
int write_provenance_artifact(const core::SlidingMonitor& monitor) {
  if (g_opts.artifacts_dir.empty()) return 0;
  const core::MonitorSnapshot snap = monitor.snapshot();
  const std::string path = g_opts.artifacts_dir + "/provenance.json";
  const std::string text = core::render_provenance_collection_json(
      snap.provenance, snap.provenance_dropped);
  if (!of::write_file(path, text)) return fail("cannot write " + path);
  return 0;
}

int cmd_monitor(std::vector<std::string> args) {
  const auto parsed = parse_monitor_args(args, /*report_mode=*/false);
  if (!parsed) return usage();
  // The report joins sampled series and flight-recorder events; without
  // the obs layer there would be nothing to join. The telemetry plane
  // serves the same stack, so --listen implies it too.
  if (!parsed->report_path.empty() || !parsed->listen.empty()) {
    obs::set_enabled(true);
  }

  core::SlidingMonitor monitor(parsed->config);
  // Declared after the monitor: the plane destructs (joining its server
  // thread) first on every exit path, so no handler can observe a dead
  // monitor.
  std::optional<core::TelemetryPlane> plane;
  if (!parsed->listen.empty()) {
    if (const int rc = start_telemetry_plane(plane, parsed->listen); rc != 0) {
      return rc;
    }
    plane->attach(&monitor);
  }
  if (const int rc =
          feed_monitor_from_file(monitor, *parsed, /*flush=*/!plane);
      rc != 0) {
    return rc;
  }
  if (plane) {
    // Keep serving the finished-but-unflushed run until the operator (or a
    // supervisor) signals; then flush the final window and fall through to
    // the normal summary/report/artifact path.
    wait_for_shutdown();
    monitor.flush();
    plane->stop();
  }

  std::printf("windows: %zu (baseline captured at t=%.1fs), alarms: %zu\n",
              monitor.windows_processed(),
              to_seconds(monitor.baseline_captured_at()),
              monitor.alarms().size());
  if (obs::enabled() && !monitor.audits().empty()) {
    // Quality columns appear only once a window actually degraded, so a
    // clean run prints the same table with or without --sanitize.
    bool any_degraded = false;
    for (const auto& audit : monitor.audits()) {
      any_degraded = any_degraded || audit.quality.degraded();
    }
    std::vector<std::string> header{"#",   "window", "events", "wall_ms",
                                    "chg", "known",  "unk"};
    if (any_degraded) {
      header.push_back("supp");
      header.push_back("quality");
    }
    header.push_back("decision");
    TextTable table(header);
    for (const auto& audit : monitor.audits()) {
      std::vector<std::string> row{
          std::to_string(audit.index),
          "[" + fmt_double(to_seconds(audit.window_begin), 1) + "s, " +
              fmt_double(to_seconds(audit.window_end), 1) + "s)",
          std::to_string(audit.events),
          fmt_double(audit.wall_ms, 3),
          std::to_string(audit.changes),
          std::to_string(audit.known),
          std::to_string(audit.unknown)};
      if (any_degraded) {
        row.push_back(std::to_string(audit.suppressed));
        row.push_back(audit.quality.degraded() ? audit.quality.summary()
                                               : "ok");
      }
      row.push_back(audit.decision);
      table.add_row(std::move(row));
    }
    std::printf("\nper-window audit trail:\n%s", table.render().c_str());
  }
  for (const auto& alarm : monitor.alarms()) {
    std::printf("\n=== ALARM window [%.1fs, %.1fs] ===\n",
                to_seconds(alarm.window_begin),
                to_seconds(alarm.window_end));
    std::fputs(alarm.report.render().c_str(), stdout);
  }
  if (!parsed->report_path.empty()) {
    const int rc =
        write_run_report(monitor, parsed->report_path, parsed->html);
    if (rc != 0) return rc;
  }
  if (const int rc = write_provenance_artifact(monitor); rc != 0) return rc;
  return monitor.alarms().empty() ? 0 : 1;
}

int cmd_report(std::vector<std::string> args) {
  const auto parsed = parse_monitor_args(args, /*report_mode=*/true);
  if (!parsed) return usage();
  // The report exists to explain a run after the fact, so the telemetry
  // that feeds it is always on here, and a crash mid-run still leaves the
  // flight-recorder tail on stderr.
  obs::set_enabled(true);
  obs::FlightRecorder::install_abnormal_exit_dump();

  core::SlidingMonitor monitor(parsed->config);
  std::optional<core::TelemetryPlane> plane;  // Destructs before monitor.
  if (!parsed->listen.empty()) {
    if (const int rc = start_telemetry_plane(plane, parsed->listen); rc != 0) {
      return rc;
    }
    plane->attach(&monitor);
  }
  if (const int rc =
          feed_monitor_from_file(monitor, *parsed, /*flush=*/!plane);
      rc != 0) {
    return rc;
  }
  if (plane) {
    wait_for_shutdown();
    monitor.flush();
    plane->stop();
  }

  const int rc = write_run_report(monitor, parsed->out_path, parsed->html);
  if (rc != 0) return rc;
  if (const int prc = write_provenance_artifact(monitor); prc != 0) {
    return prc;
  }
  return monitor.alarms().empty() ? 0 : 1;
}

// --- explain: print one provenance record from artifacts or a live plane ---

/// `flowdiff explain <id> (--artifacts DIR | --from ADDR:PORT)`. Parses its
/// own flags (deliberately not extract_global_options(): an explain run must
/// never overwrite the stats/trace/series files the monitor run left in the
/// artifacts directory it is reading).
int cmd_explain(const std::vector<std::string>& args) {
  std::string artifacts_dir;
  std::string from;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--artifacts" && i + 1 < args.size()) {
      artifacts_dir = args[++i];
    } else if (args[i].rfind("--artifacts=", 0) == 0) {
      artifacts_dir = args[i].substr(std::strlen("--artifacts="));
    } else if (args[i] == "--from" && i + 1 < args.size()) {
      from = args[++i];
    } else if (args[i].rfind("--from=", 0) == 0) {
      from = args[i].substr(std::strlen("--from="));
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 1 || artifacts_dir.empty() == from.empty()) {
    return usage();
  }
  std::uint64_t id = 0;
  {
    const std::string& text = positional[0];
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || errno != 0 || text[0] == '-') {
      return fail("malformed alarm id '" + text + "' (expected an integer)");
    }
    id = parsed;
  }

  std::string source;  // For the not-found message.
  std::string payload;
  if (!artifacts_dir.empty()) {
    source = artifacts_dir + "/provenance.json";
    const auto text = of::read_file(source);
    if (!text) return fail("cannot read " + source);
    payload = *text;
  } else {
    const auto addr = obs::parse_listen_address(from);
    if (!addr) return fail("malformed --from address: " + from);
    source = "http://" + from + "/provenance";
    const auto response = obs::http_get(addr->first, addr->second,
                                        "/provenance?id=" +
                                            std::to_string(id));
    if (!response) return fail("cannot fetch " + source);
    if (response->status == 404) {
      return fail("no provenance record with id " + std::to_string(id) +
                  " at " + source + " (unknown or rotated out)");
    }
    if (response->status != 200) {
      return fail(source + " answered HTTP " +
                  std::to_string(response->status));
    }
    payload = response->body;
  }

  const auto records = core::parse_provenance_json(payload);
  if (!records) return fail("malformed provenance JSON from " + source);
  for (const core::ProvenanceRecord& record : *records) {
    if (record.id == id) {
      std::fputs(
          core::render_provenance_text(record, /*with_latency=*/true).c_str(),
          stdout);
      return 0;
    }
  }
  return fail("no provenance record with id " + std::to_string(id) + " in " +
              source + " (unknown or rotated out)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_help(stdout);
    return 0;
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  // explain parses --artifacts itself (it reads that directory; the global
  // flag would make dump_observability() overwrite its contents).
  if (command == "explain") return cmd_explain(args);
  const GlobalOptions obs_opts = extract_global_options(args);
  g_opts = obs_opts;
  if (!obs_opts.artifacts_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(obs_opts.artifacts_dir, ec);
    if (ec) {
      return fail("cannot create artifacts directory " +
                  obs_opts.artifacts_dir + ": " + ec.message());
    }
  }

  int rc = 2;
  if (command == "summary") {
    rc = cmd_summary(args);
  } else if (command == "diff") {
    rc = cmd_diff(std::move(args));
  } else if (command == "mine") {
    rc = cmd_mine(std::move(args));
  } else if (command == "detect") {
    rc = cmd_detect(std::move(args));
  } else if (command == "monitor") {
    rc = cmd_monitor(std::move(args));
  } else if (command == "report") {
    rc = cmd_report(std::move(args));
  } else {
    return usage();
  }

  const int obs_rc = dump_observability(obs_opts);
  return rc != 0 ? rc : obs_rc;
}
