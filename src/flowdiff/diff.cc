#include "flowdiff/diff.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/trace.h"

namespace flowdiff::core {

const char* to_string(SignatureKind kind) {
  switch (kind) {
    case SignatureKind::kCg:
      return "CG";
    case SignatureKind::kFs:
      return "FS";
    case SignatureKind::kCi:
      return "CI";
    case SignatureKind::kDd:
      return "DD";
    case SignatureKind::kPc:
      return "PC";
    case SignatureKind::kPt:
      return "PT";
    case SignatureKind::kIsl:
      return "ISL";
    case SignatureKind::kCrt:
      return "CRT";
    case SignatureKind::kUtil:
      return "UTIL";
  }
  return "?";
}

bool is_infra(SignatureKind kind) {
  return kind == SignatureKind::kPt || kind == SignatureKind::kIsl ||
         kind == SignatureKind::kCrt || kind == SignatureKind::kUtil;
}

const char* to_string(Confidence confidence) {
  switch (confidence) {
    case Confidence::kHigh:
      return "high";
    case Confidence::kMedium:
      return "medium";
    case Confidence::kLow:
      return "low";
  }
  return "?";
}

double corruption_tolerance(SignatureKind kind) {
  switch (kind) {
    // Counter-derived statistics: every lost or truncated record moves the
    // per-entry means directly.
    case SignatureKind::kFs:
    case SignatureKind::kUtil:
      return 0.02;
    // Host attachments ride on sparse per-host evidence (heartbeat-scale):
    // one window's drop pattern hides hosts another window shows, so even
    // sub-percent loss flaps the topology diff in both directions — and
    // measured corruption understates true loss (a dropped event never
    // reaches the sanitizer). Any measurable corruption distrusts PT.
    case SignatureKind::kPt:
      return 0.005;
    // Distribution shapes and latency baselines: individual samples matter
    // less, but a few percent loss still distorts tails.
    case SignatureKind::kDd:
    case SignatureKind::kCi:
    case SignatureKind::kPc:
    case SignatureKind::kIsl:
    case SignatureKind::kCrt:
      return 0.05;
    // Connectivity edges re-announce with every flow between the pair, so
    // they survive substantial loss before an edge genuinely vanishes.
    case SignatureKind::kCg:
      return 0.10;
  }
  return 0.05;
}

Confidence change_confidence(SignatureKind kind,
                             const ingest::StreamQuality& quality) {
  if (!quality.degraded()) return Confidence::kHigh;
  const double effective = quality.effective_corruption_rate();
  const double tolerance = corruption_tolerance(kind);
  if (effective > tolerance) return Confidence::kLow;
  // Degraded but within what the family absorbs: trust the change, flag
  // the grade.
  return Confidence::kMedium;
}

namespace {

ComponentRef edge_component(const HostEdge& e) {
  return ComponentRef{e.first.to_string() + "->" + e.second.to_string(),
                      {e.first, e.second}};
}

ComponentRef node_component(Ipv4 ip) { return ComponentRef{ip.to_string(), {ip}}; }

std::string pair_label(const EdgePair& p) {
  return std::get<0>(p).to_string() + "->" + std::get<1>(p).to_string() +
         "->" + std::get<2>(p).to_string();
}

ComponentRef pair_component(const EdgePair& p) {
  // The node joining the two edges is the prime suspect for DD/PC shifts.
  return ComponentRef{pair_label(p),
                      {std::get<0>(p), std::get<1>(p), std::get<2>(p)}};
}

SimTime edge_first_ts(const GroupModel& group, const HostEdge& e) {
  auto it = group.sig.fs.per_edge.find(e);
  return it == group.sig.fs.per_edge.end() ? -1 : it->second.first_ts;
}

void diff_group(const GroupModel& base, const GroupModel& cur, int group_idx,
                const DiffThresholds& t, std::vector<Change>& out) {
  std::optional<obs::Span> family_span;

  // --- CG --------------------------------------------------------------
  family_span.emplace("diff/CG");
  const auto cg_diff = base.sig.cg.diff(cur.sig.cg);
  for (const auto& e : cg_diff.added) {
    Change c;
    c.kind = SignatureKind::kCg;
    c.direction = ChangeDirection::kAdded;
    c.description = "new edge " + e.first.to_string() + "->" +
                    e.second.to_string();
    c.components = {edge_component(e)};
    c.approx_time = edge_first_ts(cur, e);
    c.group_index = group_idx;
    c.magnitude = 1.0;
    out.push_back(std::move(c));
  }
  for (const auto& e : cg_diff.removed) {
    Change c;
    c.kind = SignatureKind::kCg;
    c.direction = ChangeDirection::kRemoved;
    c.description = "missing edge " + e.first.to_string() + "->" +
                    e.second.to_string();
    c.components = {edge_component(e)};
    c.group_index = group_idx;
    c.magnitude = 1.0;
    out.push_back(std::move(c));
  }

  // --- FS --------------------------------------------------------------
  family_span.emplace("diff/FS");
  for (const auto& [edge, base_stats] : base.sig.fs.per_edge) {
    const auto it = cur.sig.fs.per_edge.find(edge);
    if (it == cur.sig.fs.per_edge.end()) continue;
    const auto& cur_stats = it->second;
    if (base_stats.bytes.count() >= t.min_samples &&
        cur_stats.bytes.count() >= t.min_samples &&
        base_stats.bytes.mean() > 0.0) {
      const double delta =
          std::abs(cur_stats.bytes.mean() - base_stats.bytes.mean());
      const double rel = delta / base_stats.bytes.mean();
      // The sigma gate suppresses edges whose per-entry byte counts are
      // naturally noisy (heavily reused connections aggregate a variable
      // number of requests per flow entry).
      if (rel > t.fs_bytes_rel &&
          delta > t.fs_sigma * base_stats.bytes.stddev()) {
        Change c;
        c.kind = SignatureKind::kFs;
        c.description = "byte count on " + edge.first.to_string() + "->" +
                        edge.second.to_string() + " changed " +
                        std::to_string(static_cast<int>(rel * 100)) + "%";
        c.magnitude = rel;
        c.components = {edge_component(edge)};
        c.group_index = group_idx;
        out.push_back(std::move(c));
      }
    }
    if (base_stats.duration_ms.count() >= t.min_samples &&
        cur_stats.duration_ms.count() >= t.min_samples &&
        base_stats.duration_ms.mean() > 0.0) {
      const double ddelta = std::abs(cur_stats.duration_ms.mean() -
                                     base_stats.duration_ms.mean());
      const double rel = ddelta / base_stats.duration_ms.mean();
      if (rel > t.fs_duration_rel &&
          ddelta > t.fs_sigma * base_stats.duration_ms.stddev()) {
        Change c;
        c.kind = SignatureKind::kFs;
        c.description = "flow duration on " + edge.first.to_string() + "->" +
                        edge.second.to_string() + " changed";
        c.magnitude = rel;
        c.components = {edge_component(edge)};
        c.group_index = group_idx;
        out.push_back(std::move(c));
      }
    }
  }
  if (base.sig.fs.flows_per_sec.count() >= t.min_samples &&
      cur.sig.fs.flows_per_sec.count() >= t.min_samples &&
      base.sig.fs.flows_per_sec.mean() > 0.0) {
    const double rel = std::abs(cur.sig.fs.flows_per_sec.mean() -
                                base.sig.fs.flows_per_sec.mean()) /
                       base.sig.fs.flows_per_sec.mean();
    if (rel > t.fs_rate_rel) {
      Change c;
      c.kind = SignatureKind::kFs;
      c.description = "group flow rate changed";
      c.magnitude = rel;
      for (const Ipv4 ip : base.sig.members) {
        c.components.push_back(node_component(ip));
      }
      c.group_index = group_idx;
      out.push_back(std::move(c));
    }
  }

  // --- CI (chi-squared fitness; unstable nodes skipped) -----------------
  family_span.emplace("diff/CI");
  for (const auto& [node, base_ci] : base.sig.ci.per_node) {
    if (base.unstable_ci_nodes.contains(node)) continue;
    const auto it = cur.sig.ci.per_node.find(node);
    if (it == cur.sig.ci.per_node.end()) continue;
    if (base_ci.total < t.min_samples || it->second.total < t.min_samples) {
      continue;
    }
    const double chi2 =
        ComponentInteractionSig::chi2_at_node(base_ci, it->second);
    if (chi2 > t.ci_chi2) {
      Change c;
      c.kind = SignatureKind::kCi;
      c.description =
          "component interaction at " + node.to_string() + " changed";
      c.magnitude = chi2;
      c.components = {node_component(node)};
      c.group_index = group_idx;
      out.push_back(std::move(c));
    }
  }

  // --- DD (peak shift; unstable pairs skipped) ---------------------------
  family_span.emplace("diff/DD");
  for (const auto& [pair, base_dd] : base.sig.dd.per_pair) {
    if (base.unstable_dd_pairs.contains(pair)) continue;
    const auto it = cur.sig.dd.per_pair.find(pair);
    if (it == cur.sig.dd.per_pair.end()) continue;
    const double peak_shift = std::abs(it->second.peak_ms - base_dd.peak_ms);
    // Histogram shape distance: max per-bin difference of pairs-per-in-flow
    // rates. A dependency contributes ~1 pair per in-flow to its delay bin,
    // so mass moving to a retransmission tail shows up as an O(loss-rate)
    // delta while coincidental-pair noise stays small.
    const double shape_delta =
        base.shape_unstable_dd_pairs.contains(pair)
            ? 0.0
            : dd_shape_distance(base_dd, it->second);
    if (peak_shift > t.dd_peak_shift_ms || shape_delta > t.dd_shape_delta) {
      const bool by_peak = peak_shift > t.dd_peak_shift_ms;
      Change c;
      c.kind = SignatureKind::kDd;
      if (by_peak) {
        c.description = "delay peak at " + pair_label(pair) + " shifted " +
                        std::to_string(static_cast<int>(peak_shift)) + "ms";
        c.magnitude = peak_shift;
      } else {
        c.description = "delay distribution at " + pair_label(pair) +
                        " reshaped (mass delta " +
                        std::to_string(static_cast<int>(shape_delta * 100)) +
                        "%)";
        c.magnitude = shape_delta;
      }
      c.components = {pair_component(pair)};
      c.group_index = group_idx;
      out.push_back(std::move(c));
    }
  }

  // --- PC ----------------------------------------------------------------
  family_span.emplace("diff/PC");
  for (const auto& [pair, base_rho] : base.sig.pc.rho) {
    if (base.unstable_pc_pairs.contains(pair)) continue;
    const auto it = cur.sig.pc.rho.find(pair);
    if (it == cur.sig.pc.rho.end()) continue;
    const double delta = std::abs(it->second - base_rho);
    if (delta > t.pc_delta) {
      Change c;
      c.kind = SignatureKind::kPc;
      c.description = "correlation at " + pair_label(pair) + " changed";
      c.magnitude = delta;
      c.components = {pair_component(pair)};
      c.group_index = group_idx;
      out.push_back(std::move(c));
    }
  }
}

}  // namespace

std::vector<Change> diff_models(const BehaviorModel& baseline,
                                const BehaviorModel& current,
                                const DiffThresholds& thresholds) {
  const obs::Span span("diff");
  static obs::LatencyHistogram& run_ms =
      obs::Registry::global().histogram("diff.run_ms", 1.0);
  const obs::ScopedTimer timer(run_ms);
  static obs::Counter& runs = obs::Registry::global().counter("diff.runs");
  runs.inc();

  std::vector<Change> out;

  // --- Application groups -------------------------------------------------
  std::vector<bool> current_matched(current.groups.size(), false);
  for (std::size_t g = 0; g < baseline.groups.size(); ++g) {
    const int match = match_group(current, baseline.groups[g].sig.members);
    if (match < 0) {
      Change c;
      c.kind = SignatureKind::kCg;
      c.direction = ChangeDirection::kRemoved;
      c.description = "application group disappeared";
      for (const Ipv4 ip : baseline.groups[g].sig.members) {
        c.components.push_back(ComponentRef{ip.to_string(), {ip}});
      }
      c.group_index = static_cast<int>(g);
      c.magnitude = 1.0;
      out.push_back(std::move(c));
      continue;
    }
    current_matched[static_cast<std::size_t>(match)] = true;
    diff_group(baseline.groups[g],
               current.groups[static_cast<std::size_t>(match)],
               static_cast<int>(g), thresholds, out);
  }
  for (std::size_t g = 0; g < current.groups.size(); ++g) {
    if (current_matched[g]) continue;
    Change c;
    c.kind = SignatureKind::kCg;
    c.direction = ChangeDirection::kAdded;
    c.description = "new application group appeared";
    SimTime earliest = -1;
    for (const Ipv4 ip : current.groups[g].sig.members) {
      c.components.push_back(ComponentRef{ip.to_string(), {ip}});
    }
    for (const auto& [edge, stats] : current.groups[g].sig.fs.per_edge) {
      if (earliest < 0 || stats.first_ts < earliest) earliest = stats.first_ts;
    }
    c.approx_time = earliest;
    c.magnitude = 1.0;
    out.push_back(std::move(c));
  }

  // --- PT ------------------------------------------------------------------
  std::optional<obs::Span> family_span;
  family_span.emplace("diff/PT");
  const auto pt_diff = baseline.infra.pt.diff(current.infra.pt);
  // A host-attachment edge for a host the reference side never observed is
  // new *visibility*, not a topology change (the link existed all along);
  // only attachment changes of already-known hosts (e.g. a migrated VM) and
  // switch-switch changes are physical-topology changes.
  auto host_unknown_to = [](const PhysicalTopologySig& reference,
                            const std::pair<PtNode, PtNode>& e) {
    for (const auto& node : {e.first, e.second}) {
      if (node.starts_with("host:") && !reference.graph.has_node(node)) {
        return true;
      }
    }
    return false;
  };
  auto pt_change = [&out](const std::pair<PtNode, PtNode>& e, bool added) {
    Change c;
    c.kind = SignatureKind::kPt;
    c.direction = added ? ChangeDirection::kAdded : ChangeDirection::kRemoved;
    c.description = std::string(added ? "new" : "missing") +
                    " physical link " + e.first + "->" + e.second;
    ComponentRef ref;
    ref.label = e.first + "->" + e.second;
    for (const auto& node : {e.first, e.second}) {
      if (node.starts_with("host:")) {
        if (auto ip = Ipv4::parse(node.substr(5))) ref.ips.push_back(*ip);
      }
    }
    c.components = {std::move(ref)};
    c.magnitude = 1.0;
    out.push_back(std::move(c));
  };
  // A missing edge is only evidence of change when both endpoints are
  // still visible in the current window — an entirely dark switch is a
  // visibility loss, reported once below as a disappeared switch.
  auto endpoint_invisible = [&current](const std::pair<PtNode, PtNode>& e) {
    return !current.infra.pt.graph.has_node(e.first) ||
           !current.infra.pt.graph.has_node(e.second);
  };
  for (const auto& e : pt_diff.added) {
    if (!host_unknown_to(baseline.infra.pt, e)) pt_change(e, true);
  }
  for (const auto& e : pt_diff.removed) {
    if (!host_unknown_to(current.infra.pt, e) && !endpoint_invisible(e)) {
      pt_change(e, false);
    }
  }
  // Switches that vanished from the control traffic entirely.
  for (const auto& node : baseline.infra.pt.graph.nodes()) {
    if (!node.starts_with("sw:")) continue;
    if (current.infra.pt.graph.has_node(node)) continue;
    Change c;
    c.kind = SignatureKind::kPt;
    c.direction = ChangeDirection::kRemoved;
    c.description = "switch " + node + " disappeared from control traffic";
    c.components = {ComponentRef{node, {}}};
    c.magnitude = 1.0;
    out.push_back(std::move(c));
  }

  // --- ISL -------------------------------------------------------------------
  family_span.emplace("diff/ISL");
  for (const auto& [pair, base_stats] : baseline.infra.isl.latency_ms) {
    const auto it = current.infra.isl.latency_ms.find(pair);
    if (it == current.infra.isl.latency_ms.end()) continue;
    if (base_stats.count() < thresholds.min_samples ||
        it->second.count() < thresholds.min_samples) {
      continue;
    }
    const double shift = std::abs(it->second.mean() - base_stats.mean());
    const double gate = std::max(thresholds.isl_shift_ms,
                                 thresholds.isl_sigma * base_stats.stddev());
    if (shift > gate) {
      Change c;
      c.kind = SignatureKind::kIsl;
      c.description = "inter-switch latency sw" +
                      std::to_string(pair.first) + "->sw" +
                      std::to_string(pair.second) + " shifted " +
                      std::to_string(shift) + "ms";
      c.magnitude = shift;
      c.components = {ComponentRef{
          "sw" + std::to_string(pair.first) + "->sw" +
              std::to_string(pair.second),
          {}}};
      out.push_back(std::move(c));
    }
  }

  // --- Polled utilization ---------------------------------------------------
  family_span.emplace("diff/UTIL");
  for (const auto& [sw, base_load] : baseline.infra.load.mbps) {
    const auto it = current.infra.load.mbps.find(sw);
    if (it == current.infra.load.mbps.end()) continue;
    if (base_load.count() < thresholds.min_samples ||
        it->second.count() < thresholds.min_samples) {
      continue;
    }
    const double delta = std::abs(it->second.mean() - base_load.mean());
    if (delta < thresholds.util_floor_mbps) continue;
    const double base_mean = std::max(base_load.mean(), 0.1);
    if (delta / base_mean > thresholds.util_rel) {
      Change c;
      c.kind = SignatureKind::kUtil;
      c.description = "polled throughput at sw" + std::to_string(sw) +
                      " changed " + std::to_string(base_load.mean()) +
                      " -> " + std::to_string(it->second.mean()) + " Mbps";
      c.magnitude = delta / base_mean;
      c.components = {ComponentRef{"sw" + std::to_string(sw), {}}};
      out.push_back(std::move(c));
    }
  }

  // --- CRT --------------------------------------------------------------------
  {
    family_span.emplace("diff/CRT");
    const auto& base_crt = baseline.infra.crt.response_ms;
    const auto& cur_crt = current.infra.crt.response_ms;
    if (base_crt.count() >= thresholds.min_samples &&
        cur_crt.count() >= thresholds.min_samples) {
      const double shift = std::abs(cur_crt.mean() - base_crt.mean());
      const double gate = std::max(thresholds.crt_shift_ms,
                                   thresholds.crt_sigma * base_crt.stddev());
      if (shift > gate) {
        Change c;
        c.kind = SignatureKind::kCrt;
        c.description = "controller response time shifted " +
                        std::to_string(shift) + "ms";
        c.magnitude = shift;
        c.components = {ComponentRef{"controller", {}}};
        out.push_back(std::move(c));
      }
    }
  }
  family_span.reset();

  // Per-family change counters ("diff.changes.CG", ...), plus the total.
  static obs::Counter& total =
      obs::Registry::global().counter("diff.changes.total");
  total.inc(out.size());
  if (obs::enabled()) {
    for (const auto& change : out) {
      obs::Registry::global()
          .counter(std::string("diff.changes.") + to_string(change.kind))
          .inc();
    }
  }

  return out;
}

}  // namespace flowdiff::core
