// ControlLog: the timestamped record of control traffic captured at the
// controller. This is FlowDiff's only input (the paper's L1 / L2 logs).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "openflow/messages.h"
#include "util/time.h"

namespace flowdiff::of {

class ControlLog {
 public:
  /// Appends an event. Out-of-order appends are tolerated; the log sorts
  /// itself lazily on the next ordered access, so bulk appends stay O(n).
  void append(ControlEvent event);

  /// Pre-sizes the backing storage for a known batch (e.g. a parsed
  /// capture file) so bulk appends don't reallocate along the way.
  void reserve(std::size_t n) { events_.reserve(n); }

  /// Drops every event but keeps the allocated capacity — lets a hot loop
  /// (the monitor's window scratch buffer) reuse one allocation across
  /// windows instead of growing a fresh vector each time.
  void clear() {
    events_.clear();
    sorted_ = true;
  }

  [[nodiscard]] const std::vector<ControlEvent>& events() const {
    ensure_sorted();
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// First/last event timestamps; 0 for an empty log.
  [[nodiscard]] SimTime begin_time() const;
  [[nodiscard]] SimTime end_time() const;

  /// Events with begin <= ts < end. The log is kept time-sorted, so this is
  /// a contiguous slice.
  [[nodiscard]] ControlLog slice(SimTime begin, SimTime end) const;

  /// Events satisfying the predicate (e.g., single-VM visibility for the
  /// EC2-style capture).
  [[nodiscard]] ControlLog filter(
      const std::function<bool(const ControlEvent&)>& pred) const;

  /// Merges another controller's log, keeping time order (distributed
  /// controller deployments capture per-controller logs and synchronize).
  void merge(const ControlLog& other);

  /// Count of events of a given message type (e.g., PacketIn) — used by the
  /// scalability study.
  template <typename Message>
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (std::holds_alternative<Message>(e.msg)) ++n;
    }
    return n;
  }

 private:
  void ensure_sorted() const;

  mutable std::vector<ControlEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace flowdiff::of
