// Conservation and drain invariants of the data-plane simulation, swept
// over random traffic mixes: link loads return to zero after every flow
// ends, flow tables drain after the idle timeout, control-message counts
// balance, and the event queue terminates.
#include <gtest/gtest.h>

#include "controller/controller.h"
#include "simnet/network.h"
#include "workload/scenario.h"

namespace flowdiff::sim {
namespace {

class TrafficSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TrafficSweepTest, LoadsAndTablesDrainCompletely) {
  wl::LabScenario lab = wl::build_lab_scenario();
  NetworkConfig config;
  config.idle_timeout = kSecond;
  config.seed = static_cast<std::uint64_t>(GetParam());
  Network net(lab.topology, config);
  ctrl::Controller controller(net, ControllerId{0}, ctrl::ControllerConfig{});
  net.set_controller(&controller);

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37);
  const auto hosts = net.topology().hosts();
  int delivered = 0;
  int failed = 0;
  const int flows = 120;
  for (int i = 0; i < flows; ++i) {
    const auto a = hosts[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1))];
    auto b = a;
    while (b == a) {
      b = hosts[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(hosts.size()) - 1))];
    }
    FlowSpec spec;
    spec.key = of::FlowKey{
        net.topology().host(a).ip, net.topology().host(b).ip,
        static_cast<std::uint16_t>(rng.uniform_int(20000, 60000)),
        static_cast<std::uint16_t>(rng.uniform_int(1, 1000)),
        rng.bernoulli(0.8) ? of::Proto::kTcp : of::Proto::kUdp};
    spec.bytes = static_cast<std::uint64_t>(rng.uniform_int(100, 200000));
    spec.duration =
        static_cast<SimDuration>(rng.uniform_int(1, 300)) * kMillisecond;
    spec.on_delivered = [&delivered](const DeliveryInfo&) { ++delivered; };
    spec.on_failed = [&failed](SimTime) { ++failed; };
    net.events().schedule(
        static_cast<SimTime>(rng.uniform_int(0, 10 * kSecond)),
        [&net, spec]() mutable { net.start_flow(std::move(spec)); });
  }

  // The queue must terminate on its own (no self-sustaining events).
  net.events().run_all();

  EXPECT_EQ(delivered + failed, flows);
  EXPECT_EQ(failed, 0);  // Healthy network: nothing should fail.

  // All link loads conserved back to zero.
  for (std::size_t l = 0; l < net.topology().link_count(); ++l) {
    EXPECT_NEAR(
        net.topology().link(LinkId{static_cast<std::uint32_t>(l)}).offered_bps,
        0.0, 1e-6)
        << "link " << l << " leaked load";
  }
  // All flow tables drained (idle timeout expired everything).
  for (const SwitchId sw : net.topology().of_switches()) {
    EXPECT_EQ(net.flow_table(sw).size(), 0u)
        << "switch " << sw.value << " kept entries";
  }
  // Control-message bookkeeping is balanced: every PacketIn was answered,
  // every installed entry was eventually removed.
  const auto& log = controller.log();
  EXPECT_EQ(log.count<of::PacketIn>(), log.count<of::FlowMod>());
  EXPECT_EQ(log.count<of::FlowMod>(), log.count<of::FlowRemoved>());
  EXPECT_EQ(net.packet_in_count(), log.count<of::PacketIn>());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrafficSweepTest, ::testing::Range(1, 7));

TEST(NetworkInvariants, FailedFlowsAlsoReleaseLoad) {
  wl::LabScenario lab = wl::build_lab_scenario();
  Network net(lab.topology, NetworkConfig{});
  ctrl::Controller controller(net, ControllerId{0}, ctrl::ControllerConfig{});
  net.set_controller(&controller);
  // Block the destination's port so every flow dies at the host, after
  // having loaded every link on the way.
  net.set_port_block(lab.topology.host(lab.host("S14")).ip, 3306, true);
  int failed = 0;
  for (std::uint16_t i = 0; i < 30; ++i) {
    FlowSpec spec;
    spec.key = of::FlowKey{lab.topology.host(lab.host("S1")).ip,
                           lab.topology.host(lab.host("S14")).ip,
                           static_cast<std::uint16_t>(42000 + i), 3306,
                           of::Proto::kTcp};
    spec.bytes = 100000;
    spec.duration = 200 * kMillisecond;
    spec.on_failed = [&failed](SimTime) { ++failed; };
    net.start_flow(std::move(spec));
  }
  net.events().run_all();
  EXPECT_EQ(failed, 30);
  for (std::size_t l = 0; l < net.topology().link_count(); ++l) {
    EXPECT_NEAR(
        net.topology().link(LinkId{static_cast<std::uint32_t>(l)}).offered_bps,
        0.0, 1e-6);
  }
}

TEST(NetworkInvariants, DownedSwitchRecoversCleanly) {
  wl::LabScenario lab = wl::build_lab_scenario();
  NetworkConfig config;
  config.idle_timeout = kSecond;
  Network net(lab.topology, config);
  ctrl::Controller controller(net, ControllerId{0}, ctrl::ControllerConfig{});
  net.set_controller(&controller);

  auto send = [&](std::uint16_t sport, auto&& cb) {
    FlowSpec spec;
    spec.key = of::FlowKey{lab.topology.host(lab.host("S1")).ip,
                           lab.topology.host(lab.host("S6")).ip, sport, 80,
                           of::Proto::kTcp};
    spec.on_delivered = cb;
    net.start_flow(std::move(spec));
  };

  // Take the first aggregation switch down mid-run; deterministic routing
  // must still find agg2 once agg1 is unreachable.
  net.set_node_up(lab.agg_switches[0].value, false);
  bool ok_during = false;
  send(42000, [&](const DeliveryInfo&) { ok_during = true; });
  net.events().run_until(5 * kSecond);
  EXPECT_TRUE(ok_during);

  net.set_node_up(lab.agg_switches[0].value, true);
  bool ok_after = false;
  send(42001, [&](const DeliveryInfo&) { ok_after = true; });
  net.events().run_until(10 * kSecond);
  EXPECT_TRUE(ok_after);
}

}  // namespace
}  // namespace flowdiff::sim
