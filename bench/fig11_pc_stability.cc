// Fig. 11 reproduction: stability of the partial-correlation signature.
//  (a) PC between S13->S4 / S4->S14 (cases 1-4's Rubbis chain) across the
//      four Table II deployments.
//  (b) PC between S2->S3 / S3->S8 for case 5, per 1.5-minute-style interval,
//      across workload/reuse configurations.
#include <cstdio>

#include "experiment/lab_experiment.h"
#include "util/table.h"

namespace flowdiff {
namespace {

double pc_for(const core::BehaviorModel& model, const core::EdgePair& pair) {
  for (const auto& group : model.groups) {
    const auto it = group.sig.pc.rho.find(pair);
    if (it != group.sig.pc.rho.end()) return it->second;
  }
  return -2.0;  // Not visible.
}

int run() {
  std::printf("=== Fig. 11: stability of partial correlation ===\n\n");

  // --- (a): cases 1-4, Rubbis chain ------------------------------------
  std::printf("(a) PC(S13/S12->S4, S4->S14) across Table II cases 1-4\n");
  TextTable a({"case", "web->app / app->db edges", "PC"});
  for (int case_no = 1; case_no <= 4; ++case_no) {
    exp::LabExperimentConfig config;
    config.table2_case = case_no;
    config.window = 40 * kSecond;
    exp::LabExperiment lab(config);
    const core::FlowDiff flowdiff(lab.flowdiff_config());
    const auto model = flowdiff.model(lab.run_window());
    // Case 1 uses S13 as the Rubbis web server; cases 2-4 use S12.
    const char* web = case_no == 1 ? "S13" : "S12";
    const core::EdgePair pair{lab.lab().ip(web), lab.lab().ip("S4"),
                              lab.lab().ip("S14")};
    const double rho = pc_for(model, pair);
    a.add_row({std::to_string(case_no),
               std::string(web) + "->S4 / S4->S14",
               rho < -1.5 ? "(not visible)" : fmt_double(rho, 3)});
  }
  std::printf("%s\n", a.render().c_str());

  // --- (b): case 5 per interval under varying workload/reuse -----------
  std::printf("(b) PC(S2->S3, S3->S8), case 5, per interval\n");
  struct Config {
    double x, y, m, n;
  };
  const std::vector<Config> configs = {
      {500, 500, 0.0, 0.0}, {500, 100, 0.0, 0.2}, {500, 500, 0.0, 0.5},
      {100, 500, 0.0, 0.9}, {100, 500, 0.5, 0.5}, {100, 500, 0.9, 0.1},
  };
  TextTable b({"P(x,y) R(m,n)", "i1", "i2", "i3", "i4", "i5", "stddev"});
  for (const auto& c : configs) {
    exp::LabExperimentConfig config;
    config.table2_case = 5;
    // Five 30 s intervals — the paper partitioned its 45-minute logs into
    // 1.5-minute intervals; what matters is enough epochs per interval.
    config.window = 150 * kSecond;
    config.case5.rate_x = c.x;
    config.case5.rate_y = c.y;
    config.case5.reuse_m = c.m;
    config.case5.reuse_n = c.n;
    exp::LabExperiment lab(config);
    const core::FlowDiff flowdiff(lab.flowdiff_config());
    const auto log = lab.run_window();

    // Five equal intervals, PC per interval.
    std::vector<std::string> row{"P(" + fmt_double(c.x, 0) + "," +
                                 fmt_double(c.y, 0) + ") R(" +
                                 fmt_double(c.m * 100, 0) + "," +
                                 fmt_double(c.n * 100, 0) + ")"};
    RunningStats stats;
    const SimTime begin = log.begin_time();
    const SimTime span = log.end_time() - begin;
    for (int i = 0; i < 5; ++i) {
      const auto slice =
          log.slice(begin + span * i / 5, begin + span * (i + 1) / 5);
      const auto model = flowdiff.model(slice);
      const double rho = pc_for(model, {lab.lab().ip("S2"),
                                        lab.lab().ip("S3"),
                                        lab.lab().ip("S8")});
      if (rho > -1.5) {
        stats.add(rho);
        row.push_back(fmt_double(rho, 2));
      } else {
        row.push_back("-");
      }
    }
    row.push_back(fmt_double(stats.stddev(), 3));
    b.add_row(row);
  }
  std::printf("%s\n", b.render().c_str());
  std::printf("Shape check: PC stays positive and varies little across "
              "cases, intervals, workloads and connection reuse, matching "
              "Fig. 11.\n");
  return 0;
}

}  // namespace
}  // namespace flowdiff

int main() { return flowdiff::run(); }
