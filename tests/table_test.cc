#include "util/table.h"

#include <gtest/gtest.h>

namespace flowdiff {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace flowdiff
