#include "cli_args.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "obs/flight_recorder.h"
#include "obs/http_server.h"
#include "obs/obs.h"
#include "openflow/log_io.h"

namespace flowdiff::cli {

namespace {

bool has_suffix(const std::string& str, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return str.size() >= n && str.compare(str.size() - n, n, suffix) == 0;
}

int emit(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::fputs(text.c_str(), stderr);
    return 0;
  }
  if (!of::write_file(path, text)) return fail("cannot write " + path);
  return 0;
}

/// Matches `--NAME VALUE` and `--NAME=VALUE`; advances *i past a consumed
/// two-token form. False when args[*i] is not this flag.
bool flag_value(const std::vector<std::string>& args, std::size_t* i,
                const char* name, std::string* value) {
  const std::string& arg = args[*i];
  const std::string eq = std::string(name) + "=";
  if (arg == name && *i + 1 < args.size()) {
    *value = args[++*i];
    return true;
  }
  if (arg.rfind(eq, 0) == 0) {
    *value = arg.substr(eq.size());
    return true;
  }
  return false;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool parse_size(const std::string& text, std::size_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

volatile std::sig_atomic_t g_shutdown = 0;

void on_shutdown_signal(int) { g_shutdown = 1; }

}  // namespace

int fail(const std::string& message) {
  std::fprintf(stderr, "flowdiff: %s\n", message.c_str());
  return 2;
}

GlobalOptions extract_global_options(std::vector<std::string>& args) {
  GlobalOptions opts;
  bool explicit_stats = false;
  bool explicit_trace = false;
  bool explicit_series = false;
  std::vector<std::string> kept;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--stats") {
      opts.stats = true;
    } else if (arg.rfind("--stats=", 0) == 0) {
      opts.stats = true;
      explicit_stats = true;
      opts.stats_path = arg.substr(std::strlen("--stats="));
    } else if (arg == "--trace") {
      opts.trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      opts.trace = true;
      explicit_trace = true;
      opts.trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg == "--series") {
      opts.series = true;
    } else if (arg.rfind("--series=", 0) == 0) {
      opts.series = true;
      explicit_series = true;
      opts.series_path = arg.substr(std::strlen("--series="));
    } else if (flag_value(args, &i, "--artifacts", &value)) {
      opts.artifacts_dir = value;
    } else if (flag_value(args, &i, "--workers", &value)) {
      opts.workers = std::stoi(value);
    } else {
      kept.push_back(arg);
    }
  }
  args = std::move(kept);
  if (!opts.artifacts_dir.empty()) {
    opts.stats = opts.trace = opts.series = true;
    const std::string dir = opts.artifacts_dir;
    if (!explicit_stats) opts.stats_path = dir + "/stats.txt";
    if (!explicit_trace) opts.trace_path = dir + "/trace.json";
    if (!explicit_series) opts.series_path = dir + "/series.csv";
  }
  if (opts.stats || opts.trace || opts.series) obs::set_enabled(true);
  return opts;
}

int dump_observability(const GlobalOptions& opts) {
  int rc = 0;
  if (opts.stats) {
    const obs::Snapshot snap = obs::snapshot();
    std::string text;
    if (has_suffix(opts.stats_path, ".json")) {
      text = obs::render_json(snap);
    } else if (has_suffix(opts.stats_path, ".prom")) {
      text = obs::render_prometheus(snap);
    } else {
      text = obs::render_table(snap);
    }
    rc = emit(opts.stats_path, text);
  }
  if (opts.trace && rc == 0) {
    const auto records = obs::Trace::global().records();
    rc = emit(opts.trace_path, has_suffix(opts.trace_path, ".json")
                                   ? obs::render_span_json(records)
                                   : obs::render_span_tree(records));
  }
  if (opts.series && rc == 0) {
    const std::string text = has_suffix(opts.series_path, ".json")
                                 ? obs::render_series_json(
                                       obs::Sampler::global())
                                 : obs::render_series_csv(
                                       obs::Sampler::global());
    rc = emit(opts.series_path, text);
  }
  return rc;
}

std::optional<std::set<Ipv4>> load_services(const std::string& path) {
  const auto text = of::read_file(path);
  if (!text) return std::nullopt;
  std::set<Ipv4> services;
  std::size_t pos = 0;
  while (pos <= text->size()) {
    const auto end = text->find('\n', pos);
    const std::string line = text->substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    if (const auto ip = Ipv4::parse(line)) services.insert(*ip);
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return services;
}

std::optional<of::ControlLog> load_log(const std::string& path) {
  const auto text = of::read_file(path);
  if (!text) return std::nullopt;
  return of::parse_control_log(*text);
}

std::optional<MonitorFlags> parse_monitor_flags(
    const std::vector<std::string>& args, const GlobalOptions& global,
    std::string* error) {
  MonitorFlags parsed;
  parsed.options.workers = global.workers;
  std::string services_path;
  std::vector<std::string> task_paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    if (flag_value(args, &i, "--services", &value)) {
      services_path = value;
    } else if (flag_value(args, &i, "--task", &value)) {
      task_paths.push_back(value);
    } else if (flag_value(args, &i, "--window", &value)) {
      double seconds = 0;
      if (!parse_double(value, &seconds)) {
        *error = "unparseable --window value: " + value;
        return std::nullopt;
      }
      parsed.options.window = from_seconds(seconds);
    } else if (args[i] == "--rolling") {
      parsed.options.rolling_baseline = true;
    } else if (flag_value(args, &i, "--pipeline", &value)) {
      std::size_t depth = 0;
      if (!parse_size(value, &depth)) {
        *error = "unparseable --pipeline value: " + value;
        return std::nullopt;
      }
      parsed.options.pipeline_depth = depth;
    } else if (args[i] == "--sanitize") {
      parsed.options.sanitize = true;
    } else if (args[i] == "--incremental") {
      parsed.options.incremental = true;
    } else if (args[i] == "--no-incremental") {
      // Forces every window through the from-scratch model build — the
      // oracle mode, for A/B timing and identity checks.
      parsed.options.incremental = false;
    } else if (flag_value(args, &i, "--lateness", &value)) {
      double seconds = 0;
      if (!parse_double(value, &seconds)) {
        *error = "unparseable --lateness value: " + value;
        return std::nullopt;
      }
      // Flag-layer sugar: an explicit horizon only makes sense with the
      // sanitizer, so asking for one opts in (validate() would otherwise
      // reject the pair).
      parsed.options.sanitize = true;
      parsed.options.lateness = from_seconds(seconds);
    } else if (flag_value(args, &i, "--listen", &value)) {
      parsed.options.listen = value;
    } else {
      parsed.rest.push_back(args[i]);
    }
  }
  if (!services_path.empty()) {
    auto services = load_services(services_path);
    if (!services) {
      *error = "cannot load services " + services_path;
      return std::nullopt;
    }
    parsed.options.services = std::move(*services);
  }
  for (const auto& path : task_paths) {
    const auto text = of::read_file(path);
    if (!text) {
      *error = "cannot read automaton " + path;
      return std::nullopt;
    }
    auto automaton = core::TaskAutomaton::parse(*text);
    if (!automaton) {
      *error = "malformed automaton " + path;
      return std::nullopt;
    }
    parsed.options.tasks.push_back(std::move(*automaton));
  }
  if (const auto rejected = parsed.options.validate()) {
    *error = *rejected;
    return std::nullopt;
  }
  return parsed;
}

void install_shutdown_signals() {
  struct sigaction action = {};
  action.sa_handler = on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool shutdown_requested() { return g_shutdown != 0; }

void wait_for_shutdown() {
  while (g_shutdown == 0) {
    struct timespec delay = {0, 50 * 1000 * 1000};  // 50ms
    nanosleep(&delay, nullptr);
  }
}

int start_telemetry_plane(std::optional<core::TelemetryPlane>& plane,
                          const std::string& listen) {
  const auto addr = obs::parse_listen_address(listen);
  if (!addr) return fail("malformed --listen address: " + listen);
  core::TelemetryConfig config;
  config.http.address = addr->first;
  config.http.port = addr->second;
  plane.emplace(std::move(config));
  if (!plane->start()) {
    return fail("cannot start telemetry plane on " + listen + ": " +
                plane->last_error());
  }
  // Handlers first, announcement second: a supervisor that signals the
  // moment it sees the line must never catch the default disposition.
  install_shutdown_signals();
  std::printf("flowdiff: telemetry plane listening on http://%s:%u\n",
              addr->first.c_str(), static_cast<unsigned>(plane->port()));
  std::fflush(stdout);
  return 0;
}

}  // namespace flowdiff::cli
