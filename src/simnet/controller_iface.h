// Interface the data plane uses to reach the control plane.
//
// Concrete controllers live in src/controller; the simulator only needs to
// hand them messages at the (simulated) time the messages arrive.
#pragma once

#include "openflow/messages.h"

namespace flowdiff::sim {

class ControllerIface {
 public:
  virtual ~ControllerIface() = default;

  /// Invoked when a PacketIn arrives at the controller. Implementations
  /// respond asynchronously through Network::send_flow_mod /
  /// Network::drop_buffered.
  virtual void handle_packet_in(const of::PacketIn& msg) = 0;

  /// Invoked when a FlowRemoved notification arrives at the controller.
  virtual void handle_flow_removed(const of::FlowRemoved& msg) = 0;
};

}  // namespace flowdiff::sim
