file(REMOVE_RECURSE
  "CMakeFiles/flowdiff_workload.dir/app.cc.o"
  "CMakeFiles/flowdiff_workload.dir/app.cc.o.d"
  "CMakeFiles/flowdiff_workload.dir/connection_pool.cc.o"
  "CMakeFiles/flowdiff_workload.dir/connection_pool.cc.o.d"
  "CMakeFiles/flowdiff_workload.dir/onoff.cc.o"
  "CMakeFiles/flowdiff_workload.dir/onoff.cc.o.d"
  "CMakeFiles/flowdiff_workload.dir/scenario.cc.o"
  "CMakeFiles/flowdiff_workload.dir/scenario.cc.o.d"
  "CMakeFiles/flowdiff_workload.dir/services.cc.o"
  "CMakeFiles/flowdiff_workload.dir/services.cc.o.d"
  "CMakeFiles/flowdiff_workload.dir/tasks.cc.o"
  "CMakeFiles/flowdiff_workload.dir/tasks.cc.o.d"
  "libflowdiff_workload.a"
  "libflowdiff_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowdiff_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
