// Flow-counter polling: the controller periodically reads switch entry
// counters (paper: "the central controller can also poll flow counters on
// switches to learn utilization") and FlowDiff turns them into a per-switch
// utilization baseline that shifts under congestion-class faults.
#include <gtest/gtest.h>

#include "controller/controller.h"
#include "flowdiff/flowdiff.h"
#include "openflow/log_io.h"
#include "simnet/network.h"

namespace flowdiff {
namespace {

struct Fixture {
  sim::Topology build() {
    sim::Topology topo;
    h1 = topo.add_host("h1", Ipv4(10, 0, 0, 1));
    h2 = topo.add_host("h2", Ipv4(10, 0, 0, 2));
    sw1 = topo.add_of_switch("sw1");
    sw2 = topo.add_of_switch("sw2");
    topo.connect(h1.value, sw1.value);
    topo.connect(sw1.value, sw2.value);
    topo.connect(sw2.value, h2.value);
    return topo;
  }

  Fixture() : net(build(), sim::NetworkConfig{}),
              controller(net, ControllerId{0}, ctrl::ControllerConfig{}) {
    net.set_controller(&controller);
  }

  /// Sustained traffic h1 -> h2 at roughly `flows_per_sec` fresh flows/s.
  void drive(double flows_per_sec, SimDuration duration, std::uint64_t bytes,
             SimDuration drain = 8 * kSecond) {
    const auto count = static_cast<int>(flows_per_sec *
                                        to_seconds(duration));
    const SimTime begin = net.now();
    for (int i = 0; i < count; ++i) {
      const SimTime at = begin + duration * i / count;
      of::FlowKey key{Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2),
                      static_cast<std::uint16_t>(30000 + (i % 30000)), 80,
                      of::Proto::kTcp};
      net.events().schedule(at, [this, key, bytes] {
        sim::FlowSpec spec;
        spec.key = key;
        spec.bytes = bytes;
        spec.duration = 50 * kMillisecond;
        net.start_flow(std::move(spec));
      });
    }
    net.events().run_until(begin + duration + drain);
  }

  HostId h1, h2;
  SwitchId sw1, sw2;
  sim::Network net;
  ctrl::Controller controller;
};

TEST(StatsPolling, ReadStatsSnapshotsCounters) {
  Fixture f;
  // No drain: read the counters while the entries are still installed.
  f.drive(5, 2 * kSecond, 14600, 0);
  const auto stats = f.net.read_stats(f.sw1);
  // Some entries may have expired, but recent ones must carry counters.
  bool counted = false;
  for (const auto& reply : stats) {
    EXPECT_EQ(reply.sw, f.sw1);
    if (reply.byte_count > 0) counted = true;
    EXPECT_GE(reply.age, 0);
  }
  EXPECT_TRUE(counted);
  // Down switches answer nothing.
  f.net.set_node_up(f.sw1.value, false);
  EXPECT_TRUE(f.net.read_stats(f.sw1).empty());
}

TEST(StatsPolling, ControllerLogsStatsReplies) {
  Fixture f;
  f.controller.start_stats_polling(kSecond, 10 * kSecond);
  f.drive(5, 8 * kSecond, 14600);
  EXPECT_GT(f.controller.log().count<of::FlowStatsReply>(), 5u);
}

TEST(StatsPolling, ParsedIntoUtilizationSignature) {
  Fixture f;
  f.controller.start_stats_polling(kSecond, 20 * kSecond);
  f.drive(10, 15 * kSecond, 14600);
  const auto parsed = core::parse_log(f.controller.log());
  EXPECT_FALSE(parsed.stats.empty());
  const auto infra = core::extract_infra_signatures(parsed);
  ASSERT_TRUE(infra.load.mbps.contains(f.sw1.value));
  // ~10 flows/s x 14600 B = ~1.2 Mbps; the bytes/age estimator is coarse,
  // so just require a sane positive rate.
  EXPECT_GT(infra.load.mbps.at(f.sw1.value).mean(), 0.1);
  EXPECT_LT(infra.load.mbps.at(f.sw1.value).mean(), 100.0);
}

TEST(StatsPolling, UtilizationChangeDetectedByDiff) {
  auto run = [](std::uint64_t bytes) {
    Fixture f;
    f.controller.start_stats_polling(kSecond, 30 * kSecond);
    f.drive(10, 20 * kSecond, bytes);
    core::FlowDiffConfig config;
    const core::FlowDiff flowdiff(config);
    return flowdiff.model(f.controller.log());
  };
  const auto baseline = run(14600);
  const auto loaded = run(146000);  // 10x heavier flows.
  const auto changes =
      core::diff_models(baseline, loaded, core::DiffThresholds{});
  bool util_change = false;
  for (const auto& c : changes) {
    if (c.kind == core::SignatureKind::kUtil) util_change = true;
  }
  EXPECT_TRUE(util_change);

  // Same load twice: no utilization alarm.
  const auto again = run(14600);
  for (const auto& c :
       core::diff_models(baseline, again, core::DiffThresholds{})) {
    EXPECT_NE(c.kind, core::SignatureKind::kUtil) << c.description;
  }
}

TEST(StatsPolling, StatRecordsRoundTripThroughLogIo) {
  Fixture f;
  f.controller.start_stats_polling(kSecond, 6 * kSecond);
  f.drive(5, 4 * kSecond, 14600);
  const std::string text = of::serialize(f.controller.log());
  EXPECT_NE(text.find("STAT "), std::string::npos);
  const auto parsed = of::parse_control_log(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->count<of::FlowStatsReply>(),
            f.controller.log().count<of::FlowStatsReply>());
  EXPECT_EQ(of::serialize(*parsed), text);
}

TEST(StatsPolling, PollingStopsAtDeadline) {
  Fixture f;
  f.controller.start_stats_polling(kSecond, 3 * kSecond);
  f.drive(5, 10 * kSecond, 14600);
  // Polls at 1s, 2s, 3s only (deadline); each poll logs >= 0 entries, but
  // no polls happen after 3 s.
  SimTime last_stat = 0;
  for (const auto& e : f.controller.log().events()) {
    if (std::holds_alternative<of::FlowStatsReply>(e.msg)) {
      last_stat = std::max(last_stat, e.ts);
    }
  }
  EXPECT_LE(last_stat, 3 * kSecond + kSecond);
}

TEST(StatsPolling, ZeroIntervalIsNoOp) {
  Fixture f;
  f.controller.start_stats_polling(0, 10 * kSecond);
  f.drive(5, 3 * kSecond, 14600);
  EXPECT_EQ(f.controller.log().count<of::FlowStatsReply>(), 0u);
}

}  // namespace
}  // namespace flowdiff
