// Plain-text table rendering for the benchmark harnesses, which print the
// rows/series that correspond to the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace flowdiff {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with aligned columns and a header separator.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style %.*f formatting helper used throughout benches.
std::string fmt_double(double value, int precision = 3);

}  // namespace flowdiff
