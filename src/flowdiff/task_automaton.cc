#include "flowdiff/task_automaton.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/metrics.h"

namespace flowdiff::core {

namespace {

struct DetectorMetrics {
  obs::Counter& flows_scanned =
      obs::Registry::global().counter("task.flows_scanned");
  /// Token-against-flow match attempts: the detector's unit of work.
  obs::Counter& transitions_evaluated =
      obs::Registry::global().counter("task.transitions_evaluated");
  obs::Counter& matchers_spawned =
      obs::Registry::global().counter("task.matchers_spawned");
  /// Matchers that timed out mid-task (no progress within the
  /// interleaving threshold).
  obs::Counter& matchers_expired =
      obs::Registry::global().counter("task.matchers_expired");
  obs::Counter& accepted =
      obs::Registry::global().counter("task.occurrences_accepted");
  /// Occurrences collapsed by the overlap de-duplication pass.
  obs::Counter& deduped =
      obs::Registry::global().counter("task.occurrences_deduped");
};

DetectorMetrics& detector_metrics() {
  static DetectorMetrics m;
  return m;
}

}  // namespace

std::string TaskAutomaton::to_string() const {
  std::string out = "automaton '" + name + "'\n";
  for (std::size_t i = 0; i < states.size(); ++i) {
    out += "  state " + std::to_string(i);
    if (start_states.contains(static_cast<int>(i))) out += " [start]";
    if (accept_states.contains(static_cast<int>(i))) out += " [accept]";
    out += ":";
    for (const auto& t : states[i]) out += " " + t.to_string();
    out += " ->";
    for (int s : transitions[i]) out += " " + std::to_string(s);
    out += "\n";
  }
  return out;
}

namespace {

std::string serialize_endpoint(const TokenEndpoint& ep) {
  std::string out;
  if (ep.kind == TokenEndpoint::Kind::kVariable) {
    out = "#" + std::to_string(ep.var);
  } else {
    out = ep.ip.to_string();
  }
  out += ' ';
  out += ep.port_any ? "*" : std::to_string(ep.port);
  return out;
}

std::optional<TokenEndpoint> parse_endpoint(std::istringstream& in) {
  std::string addr;
  std::string port;
  if (!(in >> addr >> port)) return std::nullopt;
  TokenEndpoint ep;
  if (!addr.empty() && addr[0] == '#') {
    ep.kind = TokenEndpoint::Kind::kVariable;
    ep.var = std::stoi(addr.substr(1));
  } else {
    const auto ip = Ipv4::parse(addr);
    if (!ip) return std::nullopt;
    ep.kind = TokenEndpoint::Kind::kLiteral;
    ep.ip = *ip;
  }
  if (port == "*") {
    ep.port_any = true;
  } else {
    ep.port = static_cast<std::uint16_t>(std::stoul(port));
  }
  return ep;
}

}  // namespace

std::string TaskAutomaton::serialize() const {
  std::string out = "TASK " + name + "\n";
  for (std::size_t i = 0; i < states.size(); ++i) {
    out += "STATE " + std::to_string(i);
    if (start_states.contains(static_cast<int>(i))) out += " start";
    if (accept_states.contains(static_cast<int>(i))) out += " accept";
    out += "\n";
    for (const auto& token : states[i]) {
      out += "TOKEN " + serialize_endpoint(token.src) + ' ' +
             serialize_endpoint(token.dst) + ' ' +
             std::to_string(static_cast<int>(token.proto)) + "\n";
    }
    out += "TRANS";
    for (int succ : transitions[i]) out += ' ' + std::to_string(succ);
    out += "\n";
  }
  return out;
}

std::optional<TaskAutomaton> TaskAutomaton::parse(std::string_view text) {
  TaskAutomaton automaton;
  std::istringstream lines{std::string(text)};
  std::string line;
  int current_state = -1;
  bool saw_task = false;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string kind;
    if (!(in >> kind)) continue;
    if (kind == "TASK") {
      std::string rest;
      std::getline(in, rest);
      const auto pos = rest.find_first_not_of(' ');
      automaton.name = pos == std::string::npos ? "" : rest.substr(pos);
      saw_task = true;
    } else if (kind == "STATE") {
      int index = -1;
      if (!(in >> index) ||
          index != static_cast<int>(automaton.states.size())) {
        return std::nullopt;
      }
      automaton.states.emplace_back();
      automaton.transitions.emplace_back();
      current_state = index;
      std::string flag;
      while (in >> flag) {
        if (flag == "start") automaton.start_states.insert(index);
        if (flag == "accept") automaton.accept_states.insert(index);
      }
    } else if (kind == "TOKEN") {
      if (current_state < 0) return std::nullopt;
      FlowToken token;
      const auto src = parse_endpoint(in);
      const auto dst = parse_endpoint(in);
      int proto = 0;
      if (!src || !dst || !(in >> proto)) return std::nullopt;
      token.src = *src;
      token.dst = *dst;
      token.proto = static_cast<of::Proto>(proto);
      automaton.states[static_cast<std::size_t>(current_state)].push_back(
          token);
    } else if (kind == "TRANS") {
      if (current_state < 0) return std::nullopt;
      int succ = 0;
      while (in >> succ) {
        automaton.transitions[static_cast<std::size_t>(current_state)]
            .insert(succ);
      }
    } else {
      return std::nullopt;
    }
  }
  if (!saw_task) return std::nullopt;
  // Transition targets must be valid states.
  for (const auto& outs : automaton.transitions) {
    for (int succ : outs) {
      if (succ < 0 || succ >= static_cast<int>(automaton.states.size())) {
        return std::nullopt;
      }
    }
  }
  return automaton;
}

bool TaskAutomaton::accepts(const std::vector<FlowToken>& tokens) const {
  if (tokens.empty() || states.empty()) return false;
  // Frontier of (state, offset) positions after consuming a prefix.
  std::set<std::pair<int, std::size_t>> frontier;
  for (int s : start_states) frontier.insert({s, 0});

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    std::set<std::pair<int, std::size_t>> next;
    bool accepted_here = false;
    for (const auto& [state, offset] : frontier) {
      const auto& seq = states[static_cast<std::size_t>(state)];
      if (offset >= seq.size() || !(seq[offset] == tokens[i])) continue;
      if (offset + 1 == seq.size()) {
        if (accept_states.contains(state)) accepted_here = true;
        for (int succ : transitions[static_cast<std::size_t>(state)]) {
          next.insert({succ, 0});
        }
      } else {
        next.insert({state, offset + 1});
      }
    }
    if (i + 1 == tokens.size()) return accepted_here;
    if (next.empty()) return false;
    frontier = std::move(next);
  }
  return false;
}

namespace {

struct Matcher {
  int automaton = 0;
  int state = 0;
  std::size_t offset = 0;  ///< Next token to match within the state.
  std::map<int, Ipv4> bindings;
  std::set<std::uint32_t> bound_ips;  ///< Injectivity of subject bindings.
  SimTime begin = 0;
  SimTime last_progress = 0;
  std::set<Ipv4> involved;
};

/// Matches one endpoint of a pattern token against a concrete endpoint,
/// updating the matcher's bindings on success. The caller works on a copy
/// and commits only if the whole token matches.
bool match_endpoint(const TokenEndpoint& pattern, Ipv4 ip, std::uint16_t port,
                    Matcher& m, const DetectorConfig& config) {
  if (pattern.port_any) {
    if (port < config.ephemeral_floor) return false;
  } else if (pattern.port != port) {
    return false;
  }
  if (pattern.kind == TokenEndpoint::Kind::kLiteral) {
    return pattern.ip == ip;
  }
  // Subject variables only bind to non-service hosts, injectively.
  if (config.service_ips.contains(ip)) return false;
  auto it = m.bindings.find(pattern.var);
  if (it != m.bindings.end()) return it->second == ip;
  if (m.bound_ips.contains(ip.raw())) return false;
  m.bindings.emplace(pattern.var, ip);
  m.bound_ips.insert(ip.raw());
  return true;
}

bool match_token(const FlowToken& pattern, const of::FlowKey& key, Matcher& m,
                 const DetectorConfig& config) {
  detector_metrics().transitions_evaluated.inc();
  if (pattern.proto != key.proto) return false;
  Matcher trial = m;
  if (!match_endpoint(pattern.src, key.src_ip, key.src_port, trial, config) ||
      !match_endpoint(pattern.dst, key.dst_ip, key.dst_port, trial, config)) {
    return false;
  }
  m = std::move(trial);
  return true;
}

}  // namespace

TaskDetector::TaskDetector(std::vector<TaskAutomaton> automata,
                           DetectorConfig config)
    : automata_(std::move(automata)), config_(config) {}

std::vector<TaskOccurrence> TaskDetector::detect(
    const of::FlowSequence& flows) const {
  std::vector<TaskOccurrence> occurrences;
  std::vector<Matcher> active;
  std::vector<std::size_t> active_per_task(automata_.size(), 0);

  // Consumes a matcher whose current state just completed: either records
  // an occurrence (accept state) or branches into the state's successors.
  auto on_state_complete = [&](Matcher m, SimTime ts,
                               std::vector<Matcher>& out) {
    const auto& automaton = automata_[static_cast<std::size_t>(m.automaton)];
    if (automaton.accept_states.contains(m.state)) {
      TaskOccurrence occ;
      occ.task = automaton.name;
      occ.begin = m.begin;
      occ.end = ts;
      occ.involved.assign(m.involved.begin(), m.involved.end());
      occurrences.push_back(std::move(occ));
      detector_metrics().accepted.inc();
      return;
    }
    for (int succ :
         automaton.transitions[static_cast<std::size_t>(m.state)]) {
      Matcher branch = m;
      branch.state = succ;
      branch.offset = 0;
      out.push_back(std::move(branch));
    }
  };

  for (const auto& flow : flows) {
    detector_metrics().flows_scanned.inc();
    // Age out matchers that made no progress within the threshold.
    std::erase_if(active, [&](const Matcher& m) {
      if (flow.ts - m.last_progress <= config_.interleave_threshold) {
        return false;
      }
      --active_per_task[static_cast<std::size_t>(m.automaton)];
      detector_metrics().matchers_expired.inc();
      return true;
    });

    std::vector<Matcher> next_active;
    next_active.reserve(active.size() + 4);
    for (auto& m : active) {
      const auto& automaton =
          automata_[static_cast<std::size_t>(m.automaton)];
      const auto& seq = automaton.states[static_cast<std::size_t>(m.state)];
      Matcher advanced = m;
      if (match_token(seq[advanced.offset], flow.key, advanced, config_)) {
        --active_per_task[static_cast<std::size_t>(m.automaton)];
        advanced.last_progress = flow.ts;
        advanced.involved.insert(flow.key.src_ip);
        advanced.involved.insert(flow.key.dst_ip);
        ++advanced.offset;
        if (advanced.offset == seq.size()) {
          std::vector<Matcher> branches;
          on_state_complete(std::move(advanced), flow.ts, branches);
          for (auto& b : branches) {
            ++active_per_task[static_cast<std::size_t>(b.automaton)];
            next_active.push_back(std::move(b));
          }
        } else {
          ++active_per_task[static_cast<std::size_t>(advanced.automaton)];
          next_active.push_back(std::move(advanced));
        }
      } else {
        // Interleaved unrelated flow: the matcher waits (until timeout).
        next_active.push_back(std::move(m));
      }
    }
    active = std::move(next_active);

    // Spawn fresh matchers at any automaton whose start state opens with
    // this flow.
    for (std::size_t a = 0; a < automata_.size(); ++a) {
      if (active_per_task[a] >= config_.max_matchers_per_task) continue;
      const auto& automaton = automata_[a];
      for (int s : automaton.start_states) {
        const auto& seq = automaton.states[static_cast<std::size_t>(s)];
        if (seq.empty()) continue;
        Matcher fresh;
        fresh.automaton = static_cast<int>(a);
        fresh.state = s;
        fresh.offset = 0;
        fresh.begin = flow.ts;
        fresh.last_progress = flow.ts;
        if (!match_token(seq[0], flow.key, fresh, config_)) continue;
        detector_metrics().matchers_spawned.inc();
        fresh.involved.insert(flow.key.src_ip);
        fresh.involved.insert(flow.key.dst_ip);
        fresh.offset = 1;
        if (fresh.offset == seq.size()) {
          std::vector<Matcher> branches;
          on_state_complete(std::move(fresh), flow.ts, branches);
          for (auto& b : branches) {
            ++active_per_task[a];
            active.push_back(std::move(b));
          }
        } else {
          ++active_per_task[a];
          active.push_back(std::move(fresh));
        }
        if (active_per_task[a] >= config_.max_matchers_per_task) break;
      }
    }
  }

  // De-duplicate: overlapping detections of the same task with the same
  // involved hosts collapse to the earliest.
  std::sort(occurrences.begin(), occurrences.end(),
            [](const TaskOccurrence& a, const TaskOccurrence& b) {
              return a.begin < b.begin;
            });
  std::vector<TaskOccurrence> deduped;
  for (auto& occ : occurrences) {
    const bool duplicate = std::any_of(
        deduped.begin(), deduped.end(), [&occ](const TaskOccurrence& kept) {
          return kept.task == occ.task && occ.begin <= kept.end &&
                 kept.involved == occ.involved;
        });
    if (!duplicate) deduped.push_back(std::move(occ));
  }
  detector_metrics().deduped.inc(occurrences.size() - deduped.size());
  return deduped;
}

}  // namespace flowdiff::core
