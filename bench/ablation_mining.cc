// Mining-parameter ablation (design choices called out in DESIGN.md):
// how the support threshold (min_sup), IP masking, and closed-pattern
// pruning shape the learned automata and their accuracy.
//
// Task: VM migration, 30 training runs. TP over 20 fresh runs of the same
// VM pair; generalization over 20 runs of a different pair (should match
// only when masked); FP over interleaved noise-only streams.
#include <cstdio>

#include "flowdiff/task_mining.h"
#include "util/table.h"
#include "workload/tasks.h"

namespace flowdiff {
namespace {

wl::ServiceCatalog services() {
  wl::ServiceCatalog s;
  s.nfs = Ipv4(10, 0, 10, 1);
  s.dns = Ipv4(10, 0, 10, 2);
  s.dhcp = Ipv4(10, 0, 10, 3);
  s.ntp = Ipv4(10, 0, 10, 4);
  s.netbios = Ipv4(10, 0, 10, 5);
  s.metadata = Ipv4(10, 0, 10, 6);
  s.apt_mirror = Ipv4(10, 0, 10, 7);
  return s;
}

int run() {
  const auto svc = services();
  std::set<Ipv4> service_ips;
  for (const Ipv4 ip : svc.special_nodes()) service_ips.insert(ip);
  const Ipv4 vm_a(10, 0, 1, 1);
  const Ipv4 vm_b(10, 0, 2, 1);
  const Ipv4 vm_c(10, 0, 3, 1);
  const Ipv4 vm_d(10, 0, 4, 1);

  Rng rng(2024);
  auto migrate = [&](Ipv4 a, Ipv4 b) {
    return wl::expand_task(wl::vm_migration_profile(), {a, b}, svc, rng, 0)
        .flows;
  };
  std::vector<of::FlowSequence> training;
  for (int i = 0; i < 30; ++i) training.push_back(migrate(vm_a, vm_b));

  core::DetectorConfig det;
  det.service_ips = service_ips;
  auto matches = [&](const core::TaskAutomaton& automaton,
                     const of::FlowSequence& flows) {
    return !core::TaskDetector({automaton}, det).detect(flows).empty();
  };

  std::printf("=== Ablation: task-mining parameters ===\n");
  std::printf("VM migration, 30 training runs; TP = same-pair rematch, "
              "GEN = different-pair match, FP = noise-only streams.\n\n");

  TextTable table({"min_sup", "masked", "raw pats", "closed pats", "states",
                   "TP /20", "GEN /20", "FP /20"});
  for (const double min_sup : {0.3, 0.6, 0.9}) {
    for (const bool masked : {false, true}) {
      core::MiningConfig config;
      config.min_sup = min_sup;
      config.mask_subjects = masked;
      config.service_ips = service_ips;
      const auto mined = core::mine_task("vm_migration", training, config);
      const auto raw = core::frequent_contiguous_patterns(
          mined.filtered_runs, min_sup);

      int tp = 0;
      int gen = 0;
      int fp = 0;
      for (int i = 0; i < 20; ++i) {
        if (matches(mined.automaton, migrate(vm_a, vm_b))) ++tp;
        if (matches(mined.automaton, migrate(vm_c, vm_d))) ++gen;
        const auto noise = wl::background_noise(
            {vm_a, vm_b, vm_c, vm_d, svc.nfs}, 120, 0, 10 * kSecond, rng);
        if (matches(mined.automaton, noise)) ++fp;
      }
      table.add_row({fmt_double(min_sup, 1), masked ? "yes" : "no",
                     std::to_string(raw.size()),
                     std::to_string(mined.patterns.size()),
                     std::to_string(mined.automaton.state_count()),
                     std::to_string(tp), std::to_string(gen),
                     std::to_string(fp)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expected shape: closed pruning collapses the raw pattern set several-"
      "fold;\nunmasked automata never generalize to other VM pairs (GEN=0) "
      "while masked\nones always do; random noise alone never completes an "
      "automaton (FP=0);\nmin_sup mainly trades automaton compactness, not "
      "accuracy.\n");
  return 0;
}

}  // namespace
}  // namespace flowdiff

int main() { return flowdiff::run(); }
