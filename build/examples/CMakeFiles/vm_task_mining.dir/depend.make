# Empty dependencies file for vm_task_mining.
# This may be replaced when dependencies are built.
