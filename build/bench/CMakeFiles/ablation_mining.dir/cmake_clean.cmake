file(REMOVE_RECURSE
  "CMakeFiles/ablation_mining.dir/ablation_mining.cc.o"
  "CMakeFiles/ablation_mining.dir/ablation_mining.cc.o.d"
  "ablation_mining"
  "ablation_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
