// FlowDiff public facade.
//
//   FlowDiff fd(config);
//   auto baseline = fd.model(stable_log);     // known-good behavior
//   auto current = fd.model(suspect_log);
//   auto report = fd.diff(baseline, current, learned_task_automata);
//   std::cout << report.render();
//
// The report lists every signature change, splits known (task-explained)
// from unknown changes, classifies the likely problem type via the
// dependency matrix, and ranks the implicated components.
#pragma once

#include <string>
#include <vector>

#include "flowdiff/diagnosis.h"
#include "flowdiff/diff.h"
#include "flowdiff/model.h"
#include "flowdiff/task_automaton.h"
#include "flowdiff/task_mining.h"
#include "flowdiff/validate.h"

namespace flowdiff::core {

struct FlowDiffConfig {
  ModelConfig model;
  DiffThresholds thresholds;
  ValidationConfig validation;
  DetectorConfig detector;
  /// Worker threads for model building (util/executor). 0 = serial inline
  /// on the calling thread; any value yields bit-identical models.
  int parallelism = 0;

  /// Propagates the special-node list into every sub-config that needs it.
  void set_special_nodes(std::set<Ipv4> nodes);
};

struct DiffReport {
  std::vector<Change> changes;              ///< Everything the diff found.
  std::vector<Change> known;                ///< Task-explained changes.
  std::vector<std::string> known_explanations;
  std::vector<Change> unknown;              ///< Needs operator attention.
  /// Unknown changes withheld from diagnosis because the capture stream
  /// was too corrupted for their signature family (confidence low); only
  /// ever non-empty in degraded mode.
  std::vector<Change> suppressed;
  std::vector<TaskOccurrence> detected_tasks;
  DependencyMatrix matrix;
  std::vector<ProblemScore> problems;       ///< Best first.
  std::vector<std::pair<std::string, int>> component_ranking;
  /// Stream quality of the window diffed (all-zero when no sanitizer ran).
  ingest::StreamQuality quality;

  [[nodiscard]] bool clean() const { return unknown.empty(); }
  /// The capture stream showed hard corruption evidence; confidence
  /// grades and the suppressed list are meaningful.
  [[nodiscard]] bool degraded() const { return quality.degraded(); }
  [[nodiscard]] std::string render() const;
};

class FlowDiff {
 public:
  explicit FlowDiff(FlowDiffConfig config);

  /// Builds a behavior model from a control log.
  [[nodiscard]] BehaviorModel model(const of::ControlLog& log) const;

  /// Diffs `current` against `baseline`; task automata (if given) are
  /// matched against the current log's flow starts to validate changes.
  /// When `quality` is given (the ingest sanitizer's record for the
  /// current window) and shows degradation, every change is confidence-
  /// graded against its family's corruption tolerance and low-confidence
  /// unknowns are moved to DiffReport::suppressed before diagnosis, so
  /// alarms are not raised from signature families the capture stream can
  /// no longer support.
  [[nodiscard]] DiffReport diff(
      const BehaviorModel& baseline, const BehaviorModel& current,
      const std::vector<TaskAutomaton>& tasks = {},
      const ingest::StreamQuality* quality = nullptr) const;

  /// Convenience: learn a task automaton with the facade's service list.
  [[nodiscard]] MinedTask learn_task(
      const std::string& name, const std::vector<of::FlowSequence>& runs,
      bool mask_subjects) const;

  [[nodiscard]] const FlowDiffConfig& config() const { return config_; }
  /// The modeling engine (owns the worker pool sized by
  /// FlowDiffConfig::parallelism); copies of the facade share it.
  [[nodiscard]] const Modeler& modeler() const { return *modeler_; }

 private:
  FlowDiffConfig config_;
  std::shared_ptr<Modeler> modeler_;
};

}  // namespace flowdiff::core
