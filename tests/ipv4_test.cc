#include "util/ipv4.h"

#include <gtest/gtest.h>

namespace flowdiff {
namespace {

TEST(Ipv4, OctetConstructionAndToString) {
  const Ipv4 ip(10, 0, 1, 7);
  EXPECT_EQ(ip.to_string(), "10.0.1.7");
  EXPECT_EQ(ip.raw(), 0x0A000107u);
}

TEST(Ipv4, ParseRoundTrip) {
  for (const char* text :
       {"0.0.0.0", "255.255.255.255", "192.168.1.1", "10.0.10.3"}) {
    const auto ip = Ipv4::parse(text);
    ASSERT_TRUE(ip.has_value()) << text;
    EXPECT_EQ(ip->to_string(), text);
  }
}

TEST(Ipv4, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4::parse("").has_value());
  EXPECT_FALSE(Ipv4::parse("10.0.0").has_value());
  EXPECT_FALSE(Ipv4::parse("10.0.0.0.1").has_value());
  EXPECT_FALSE(Ipv4::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4::parse("10..0.1").has_value());
  EXPECT_FALSE(Ipv4::parse("10.0.0.1x").has_value());
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2));
  EXPECT_LT(Ipv4(9, 255, 255, 255), Ipv4(10, 0, 0, 0));
  EXPECT_EQ(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 1));
}

TEST(Ipv4, HashDistinguishes) {
  std::hash<Ipv4> h;
  EXPECT_NE(h(Ipv4(10, 0, 0, 1)), h(Ipv4(10, 0, 0, 2)));
  EXPECT_EQ(h(Ipv4(10, 0, 0, 1)), h(Ipv4(10, 0, 0, 1)));
}

}  // namespace
}  // namespace flowdiff
