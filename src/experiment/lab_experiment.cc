#include "experiment/lab_experiment.h"

namespace flowdiff::exp {

namespace {

sim::NetworkConfig tune(sim::NetworkConfig net, std::uint64_t seed) {
  net.seed = seed;
  return net;
}

}  // namespace

LabExperiment::LabExperiment(LabExperimentConfig config)
    : config_(config),
      lab_(wl::build_lab_scenario()),
      net_(lab_.topology, tune(config.net, config.seed)),
      controller_(net_, ControllerId{0}, config.controller),
      rng_(config.seed ^ 0x5bd1e995u) {
  net_.set_controller(&controller_);
  // Hardware aggregation switches process misses faster than the software
  // edge switches, as in the paper's testbed.
  for (const SwitchId sw : lab_.agg_switches) {
    net_.set_switch_profile(sw, sim::SwitchProfile{200, 60});
  }
  for (const SwitchId sw : lab_.edge_switches) {
    net_.set_switch_profile(sw, sim::SwitchProfile{700, 200});
  }
  for (const auto& spec :
       wl::table2_apps(config_.table2_case, lab_, config_.case5)) {
    apps_.push_back(std::make_unique<wl::MultiTierApp>(
        net_, spec, &lab_.services, rng_.fork()));
  }
}

void LabExperiment::schedule_heartbeats(SimTime begin, SimTime end) {
  // Every server syncs NTP periodically on a fresh connection — the kind of
  // background chatter a real data center always has. It keeps every
  // switch's attachment visible to topology inference in every window, so
  // an application-level fault does not darken part of the topology.
  for (const auto& [name, host] : lab_.hosts) {
    if (name.size() > 0 && name[0] != 'S' && name[0] != 'V') continue;
    const Ipv4 src = lab_.topology.host(host).ip;
    SimTime at = begin + static_cast<SimDuration>(
                             rng_.uniform(0.0, 4.0 * kSecond));
    while (at < end) {
      net_.events().schedule(at, [this, src] {
        sim::FlowSpec ping;
        ping.key = of::FlowKey{src, lab_.services.ntp, next_heartbeat_port_++,
                               wl::kPortNtp, of::Proto::kUdp};
        if (next_heartbeat_port_ < 20000) next_heartbeat_port_ = 20000;
        ping.bytes = 90;
        ping.duration = kMillisecond;
        net_.start_flow(std::move(ping));
      });
      at += 6 * kSecond +
            static_cast<SimDuration>(rng_.uniform(0.0, 3.0 * kSecond));
    }
  }
}

of::ControlLog LabExperiment::run_window(faults::FaultInjector* fault) {
  controller_.clear_log();
  const SimTime begin = net_.now();
  const SimTime end = begin + config_.window;
  if (fault != nullptr) fault->apply();
  for (auto& app : apps_) app->start(begin, end);
  schedule_heartbeats(begin, end);
  net_.events().run_until(end + config_.drain);
  if (fault != nullptr) fault->revert();
  // Let post-fault state (expiries, in-flight requests) settle before the
  // next window.
  net_.events().run_until(net_.now() + 2 * kSecond);
  return controller_.log();
}

core::FlowDiffConfig LabExperiment::flowdiff_config() const {
  core::FlowDiffConfig config;
  const auto specials = lab_.services.special_nodes();
  config.set_special_nodes({specials.begin(), specials.end()});
  return config;
}

std::uint64_t LabExperiment::completed_requests() const {
  std::uint64_t total = 0;
  for (const auto& app : apps_) total += app->completed_requests();
  return total;
}

}  // namespace flowdiff::exp
