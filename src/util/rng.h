// Deterministic random-number generation for simulations.
//
// Every stochastic component takes an explicit Rng so experiments are
// reproducible from a single seed and independent components can be given
// decorrelated streams (via fork()).
#pragma once

#include <cstdint>
#include <random>

#include "util/time.h"

namespace flowdiff {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Exponential with the given mean.
  double exponential(double mean);

  /// Poisson-distributed count with the given mean.
  std::int64_t poisson(double mean);

  /// Lognormal parameterized by the *target* mean and standard deviation of
  /// the distribution itself (not of the underlying normal), as used by the
  /// Benson et al. ON/OFF traffic model in the paper's scalability study.
  double lognormal_mean_sd(double mean, double sd);

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sd);

  /// Derives an independent child generator; deterministic given this
  /// generator's state.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace flowdiff
