# Empty compiler generated dependencies file for diff_test.
# This may be replaced when dependencies are built.
