#include "openflow/control_log.h"

#include <algorithm>

namespace flowdiff::of {

void ControlLog::append(ControlEvent event) {
  if (sorted_ && !events_.empty() && event.ts < events_.back().ts) {
    sorted_ = false;
  }
  events_.push_back(std::move(event));
}

void ControlLog::ensure_sorted() const {
  if (sorted_) return;
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const ControlEvent& a, const ControlEvent& b) { return a.ts < b.ts; });
  sorted_ = true;
}

SimTime ControlLog::begin_time() const {
  ensure_sorted();
  return events_.empty() ? 0 : events_.front().ts;
}

SimTime ControlLog::end_time() const {
  ensure_sorted();
  return events_.empty() ? 0 : events_.back().ts;
}

ControlLog ControlLog::slice(SimTime begin, SimTime end) const {
  ensure_sorted();
  ControlLog out;
  auto lo = std::lower_bound(
      events_.begin(), events_.end(), begin,
      [](const ControlEvent& e, SimTime t) { return e.ts < t; });
  auto hi = std::lower_bound(
      lo, events_.end(), end,
      [](const ControlEvent& e, SimTime t) { return e.ts < t; });
  out.events_.assign(lo, hi);
  return out;
}

ControlLog ControlLog::filter(
    const std::function<bool(const ControlEvent&)>& pred) const {
  ControlLog out;
  for (const auto& e : events_) {
    if (pred(e)) out.events_.push_back(e);
  }
  return out;
}

void ControlLog::merge(const ControlLog& other) {
  other.ensure_sorted();
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  sorted_ = false;
  ensure_sorted();
}

}  // namespace flowdiff::of
