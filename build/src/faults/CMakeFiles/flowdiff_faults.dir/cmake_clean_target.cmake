file(REMOVE_RECURSE
  "libflowdiff_faults.a"
)
