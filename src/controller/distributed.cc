#include "controller/distributed.h"

namespace flowdiff::ctrl {

DistributedControllerSet::DistributedControllerSet(sim::Network& net,
                                                   std::size_t instances,
                                                   ControllerConfig config) {
  if (instances == 0) instances = 1;
  controllers_.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i) {
    ControllerConfig cfg = config;
    cfg.seed = config.seed + i * 0x9e37u;
    controllers_.push_back(std::make_unique<Controller>(
        net, ControllerId{static_cast<std::uint32_t>(i)}, cfg));
  }
}

Controller& DistributedControllerSet::controller_for(SwitchId sw) {
  return *controllers_[sw.value % controllers_.size()];
}

void DistributedControllerSet::handle_packet_in(const of::PacketIn& msg) {
  controller_for(msg.sw).handle_packet_in(msg);
}

void DistributedControllerSet::handle_flow_removed(
    const of::FlowRemoved& msg) {
  controller_for(msg.sw).handle_flow_removed(msg);
}

of::ControlLog DistributedControllerSet::merged_log() const {
  of::ControlLog merged;
  for (const auto& c : controllers_) merged.merge(c->log());
  return merged;
}

void DistributedControllerSet::clear_logs() {
  for (auto& c : controllers_) c->clear_log();
}

}  // namespace flowdiff::ctrl
