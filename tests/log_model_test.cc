#include "flowdiff/log_model.h"

#include <gtest/gtest.h>

#include "controller/controller.h"
#include "simnet/network.h"

namespace flowdiff::core {
namespace {

of::FlowKey key(std::uint16_t sport = 40000) {
  return of::FlowKey{Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), sport, 80,
                     of::Proto::kTcp};
}

of::ControlEvent pin(SimTime ts, std::uint32_t sw, const of::FlowKey& k) {
  of::PacketIn msg;
  msg.sw = SwitchId{sw};
  msg.in_port = PortId{1};
  msg.key = k;
  return of::ControlEvent{ts, ControllerId{0}, msg};
}

of::ControlEvent fmod(SimTime ts, std::uint32_t sw, const of::FlowKey& k) {
  of::FlowMod msg;
  msg.sw = SwitchId{sw};
  msg.out_port = PortId{2};
  msg.key = k;
  return of::ControlEvent{ts, ControllerId{0}, msg};
}

TEST(ParseLog, GroupsPacketInsByFlow) {
  of::ControlLog log;
  log.append(pin(100, 1, key()));
  log.append(fmod(150, 1, key()));
  log.append(pin(300, 2, key()));
  log.append(fmod(350, 2, key()));
  const ParsedLog parsed = parse_log(log);
  ASSERT_EQ(parsed.occurrences.size(), 1u);
  const auto& occ = parsed.occurrences[0];
  EXPECT_EQ(occ.first_ts, 100);
  ASSERT_EQ(occ.hops.size(), 2u);
  EXPECT_EQ(occ.hops[0].sw, SwitchId{1});
  EXPECT_EQ(occ.hops[0].flow_mod_ts, 150);
  EXPECT_EQ(occ.hops[1].sw, SwitchId{2});
}

TEST(ParseLog, SameKeyBeyondWindowIsNewOccurrence) {
  of::ControlLog log;
  log.append(pin(100, 1, key()));
  log.append(pin(100 + 3 * kSecond, 1, key()));
  const ParsedLog parsed = parse_log(log, 2 * kSecond);
  EXPECT_EQ(parsed.occurrences.size(), 2u);
}

TEST(ParseLog, DistinctKeysAreDistinctOccurrences) {
  of::ControlLog log;
  log.append(pin(100, 1, key(40000)));
  log.append(pin(110, 1, key(40001)));
  const ParsedLog parsed = parse_log(log);
  EXPECT_EQ(parsed.occurrences.size(), 2u);
}

TEST(ParseLog, CrtSamplesFromPinToFlowMod) {
  of::ControlLog log;
  log.append(pin(1000, 1, key()));
  log.append(fmod(1500, 1, key()));
  const ParsedLog parsed = parse_log(log);
  ASSERT_EQ(parsed.crt_samples_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.crt_samples_ms[0], 0.5);
}

TEST(ParseLog, FlowRemovedCollected) {
  of::ControlLog log;
  of::FlowRemoved fr;
  fr.sw = SwitchId{1};
  fr.key = key();
  fr.byte_count = 1234;
  fr.packet_count = 5;
  fr.duration = kSecond;
  log.append(of::ControlEvent{9000, ControllerId{0}, fr});
  const ParsedLog parsed = parse_log(log);
  ASSERT_EQ(parsed.removed.size(), 1u);
  EXPECT_EQ(parsed.removed[0].bytes, 1234u);
  EXPECT_EQ(parsed.removed[0].ts, 9000);
}

TEST(ParseLog, FlowStartsAreTimeOrdered) {
  of::ControlLog log;
  log.append(pin(300, 1, key(40002)));
  log.append(pin(100, 1, key(40000)));
  log.append(pin(200, 1, key(40001)));
  const auto starts = parse_log(log).flow_starts();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0].ts, 100);
  EXPECT_EQ(starts[2].ts, 300);
}

TEST(ParseLog, EndToEndFromSimulatedNetwork) {
  // A two-switch network: parse_log must recover the hop order the flow
  // actually took.
  sim::Topology topo;
  const HostId h1 = topo.add_host("h1", Ipv4(10, 0, 0, 1));
  const HostId h2 = topo.add_host("h2", Ipv4(10, 0, 0, 2));
  const SwitchId sw1 = topo.add_of_switch("sw1");
  const SwitchId sw2 = topo.add_of_switch("sw2");
  topo.connect(h1.value, sw1.value);
  topo.connect(sw1.value, sw2.value);
  topo.connect(sw2.value, h2.value);
  sim::Network net(std::move(topo), sim::NetworkConfig{});
  ctrl::Controller controller(net, ControllerId{0}, ctrl::ControllerConfig{});
  net.set_controller(&controller);
  net.start_flow(sim::FlowSpec{key(), 1000, 10 * kMillisecond, {}, {}});
  net.events().run_until(kSecond);

  const ParsedLog parsed = parse_log(controller.log());
  ASSERT_EQ(parsed.occurrences.size(), 1u);
  const auto& occ = parsed.occurrences[0];
  ASSERT_EQ(occ.hops.size(), 2u);
  EXPECT_EQ(occ.hops[0].sw, sw1);
  EXPECT_EQ(occ.hops[1].sw, sw2);
  EXPECT_GE(occ.hops[0].flow_mod_ts, occ.hops[0].packet_in_ts);
  EXPECT_GE(occ.hops[1].packet_in_ts, occ.hops[0].flow_mod_ts);
  EXPECT_EQ(parsed.crt_samples_ms.size(), 2u);
}

}  // namespace
}  // namespace flowdiff::core
