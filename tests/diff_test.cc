#include "flowdiff/diff.h"

#include <gtest/gtest.h>

namespace flowdiff::core {
namespace {

const Ipv4 kA(10, 0, 0, 1);
const Ipv4 kB(10, 0, 0, 2);
const Ipv4 kC(10, 0, 0, 3);
const Ipv4 kX(10, 0, 0, 9);

FlowOccurrence occ(Ipv4 src, Ipv4 dst, SimTime ts,
                   std::uint16_t sport = 40000) {
  FlowOccurrence o;
  o.key = of::FlowKey{src, dst, sport, 80, of::Proto::kTcp};
  o.first_ts = ts;
  return o;
}

ParsedLog chain_log(int n, SimDuration proc, SimDuration gap) {
  ParsedLog log;
  log.begin = 0;
  for (int i = 0; i < n; ++i) {
    const auto sport = static_cast<std::uint16_t>(40000 + i);
    log.occurrences.push_back(occ(kA, kB, i * gap, sport));
    log.occurrences.push_back(occ(kB, kC, i * gap + proc, sport));
  }
  std::sort(log.occurrences.begin(), log.occurrences.end(),
            [](const FlowOccurrence& a, const FlowOccurrence& b) {
              return a.first_ts < b.first_ts;
            });
  log.end = n * gap + proc;
  return log;
}

GroupModel group_from(const ParsedLog& log) {
  GroupModel g;
  AppSignatureConfig config;
  config.min_edge_flows = 3;
  g.sig = extract_group_signatures(log, {kA, kB, kC, kX}, config);
  return g;
}

BehaviorModel model_from(const ParsedLog& log) {
  BehaviorModel m;
  m.begin = log.begin;
  m.end = log.end;
  m.groups.push_back(group_from(log));
  m.infra = extract_infra_signatures(log);
  return m;
}

std::set<SignatureKind> kinds_of(const std::vector<Change>& changes) {
  std::set<SignatureKind> out;
  for (const auto& c : changes) out.insert(c.kind);
  return out;
}

TEST(DiffModels, IdenticalModelsProduceNoChanges) {
  const auto base = model_from(chain_log(30, 50 * kMillisecond, kSecond));
  const auto cur = model_from(chain_log(30, 50 * kMillisecond, kSecond));
  EXPECT_TRUE(diff_models(base, cur, DiffThresholds{}).empty());
}

TEST(DiffModels, NewCgEdgeDetectedWithTimestamp) {
  const auto base = model_from(chain_log(30, 50 * kMillisecond, kSecond));
  ParsedLog cur_log = chain_log(30, 50 * kMillisecond, kSecond);
  for (int i = 0; i < 6; ++i) {
    cur_log.occurrences.push_back(
        occ(kX, kB, 12 * kSecond + i * kSecond,
            static_cast<std::uint16_t>(42000 + i)));
  }
  const auto changes =
      diff_models(base, model_from(cur_log), DiffThresholds{});
  const auto* cg = [&]() -> const Change* {
    for (const auto& c : changes) {
      if (c.kind == SignatureKind::kCg &&
          c.description.find("new edge") != std::string::npos) {
        return &c;
      }
    }
    return nullptr;
  }();
  ASSERT_NE(cg, nullptr);
  EXPECT_EQ(cg->approx_time, 12 * kSecond);
  ASSERT_EQ(cg->components.size(), 1u);
  EXPECT_EQ(cg->components[0].ips.size(), 2u);
}

TEST(DiffModels, MissingCgEdgeDetected) {
  const auto base = model_from(chain_log(30, 50 * kMillisecond, kSecond));
  ParsedLog cur_log = chain_log(30, 50 * kMillisecond, kSecond);
  std::erase_if(cur_log.occurrences, [](const FlowOccurrence& o) {
    return o.key.src_ip == kB;
  });
  const auto changes =
      diff_models(base, model_from(cur_log), DiffThresholds{});
  bool missing_edge = false;
  for (const auto& c : changes) {
    if (c.kind == SignatureKind::kCg &&
        c.description.find("missing edge") != std::string::npos) {
      missing_edge = true;
    }
  }
  EXPECT_TRUE(missing_edge);
  // Dropping B's outgoing flows also breaks CI at B.
  EXPECT_TRUE(kinds_of(changes).contains(SignatureKind::kCi));
}

TEST(DiffModels, DdPeakShiftDetected) {
  const auto base = model_from(chain_log(40, 50 * kMillisecond, kSecond));
  const auto cur = model_from(chain_log(40, 130 * kMillisecond, kSecond));
  const auto changes = diff_models(base, cur, DiffThresholds{});
  ASSERT_TRUE(kinds_of(changes).contains(SignatureKind::kDd));
  for (const auto& c : changes) {
    if (c.kind == SignatureKind::kDd) {
      EXPECT_NEAR(c.magnitude, 80.0, 25.0);
    }
  }
}

TEST(DiffModels, SmallDdShiftIgnored) {
  const auto base = model_from(chain_log(40, 50 * kMillisecond, kSecond));
  const auto cur = model_from(chain_log(40, 58 * kMillisecond, kSecond));
  const auto changes = diff_models(base, cur, DiffThresholds{});
  EXPECT_FALSE(kinds_of(changes).contains(SignatureKind::kDd));
}

TEST(DiffModels, UnstableDdPairSkipped) {
  auto base = model_from(chain_log(40, 50 * kMillisecond, kSecond));
  base.groups[0].unstable_dd_pairs.insert(EdgePair{kA, kB, kC});
  const auto cur = model_from(chain_log(40, 130 * kMillisecond, kSecond));
  const auto changes = diff_models(base, cur, DiffThresholds{});
  EXPECT_FALSE(kinds_of(changes).contains(SignatureKind::kDd));
}

TEST(DiffModels, FsByteChangeDetected) {
  auto make = [](std::uint64_t bytes) {
    ParsedLog log = chain_log(30, 50 * kMillisecond, kSecond);
    for (int i = 0; i < 8; ++i) {
      RemovedRecord rec;
      rec.sw = SwitchId{1};
      rec.key = of::FlowKey{kA, kB, 40000, 80, of::Proto::kTcp};
      rec.ts = i * kSecond;
      rec.bytes = bytes;
      rec.duration = 100 * kMillisecond;
      log.removed.push_back(rec);
    }
    return model_from(log);
  };
  const auto changes =
      diff_models(make(10000), make(18000), DiffThresholds{});
  ASSERT_TRUE(kinds_of(changes).contains(SignatureKind::kFs));
  const auto no_changes =
      diff_models(make(10000), make(11000), DiffThresholds{});
  EXPECT_FALSE(kinds_of(no_changes).contains(SignatureKind::kFs));
}

TEST(DiffModels, GroupRateChangeDetected) {
  const auto base = model_from(chain_log(20, 50 * kMillisecond, kSecond));
  // Same duration, 5x the arrival rate.
  const auto cur =
      model_from(chain_log(100, 50 * kMillisecond, kSecond / 5));
  const auto changes = diff_models(base, cur, DiffThresholds{});
  bool rate_change = false;
  for (const auto& c : changes) {
    if (c.kind == SignatureKind::kFs &&
        c.description.find("flow rate") != std::string::npos) {
      rate_change = true;
    }
  }
  EXPECT_TRUE(rate_change);
}

TEST(DiffModels, DisappearedGroupReported) {
  const auto base = model_from(chain_log(30, 50 * kMillisecond, kSecond));
  BehaviorModel empty;
  empty.begin = 0;
  empty.end = 30 * kSecond;
  const auto changes = diff_models(base, empty, DiffThresholds{});
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, SignatureKind::kCg);
  EXPECT_NE(changes[0].description.find("disappeared"), std::string::npos);
}

TEST(DiffModels, NewGroupReported) {
  BehaviorModel empty;
  const auto cur = model_from(chain_log(30, 50 * kMillisecond, kSecond));
  const auto changes = diff_models(empty, cur, DiffThresholds{});
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_NE(changes[0].description.find("new application group"),
            std::string::npos);
  EXPECT_GE(changes[0].approx_time, 0);
}

TEST(DiffModels, IslShiftDetected) {
  auto with_isl = [](double mean_ms) {
    ParsedLog log = chain_log(10, 50 * kMillisecond, kSecond);
    for (auto& o : log.occurrences) {
      o.hops.push_back(SwitchHop{SwitchId{1}, PortId{1}, PortId{2},
                                 o.first_ts, o.first_ts + 200});
      o.hops.push_back(SwitchHop{
          SwitchId{2}, PortId{1}, PortId{2},
          o.first_ts + 200 + static_cast<SimDuration>(mean_ms * 1000),
          o.first_ts + 300 + static_cast<SimDuration>(mean_ms * 1000)});
    }
    return model_from(log);
  };
  const auto changes =
      diff_models(with_isl(0.5), with_isl(5.0), DiffThresholds{});
  EXPECT_TRUE(kinds_of(changes).contains(SignatureKind::kIsl));
  const auto no_changes =
      diff_models(with_isl(0.5), with_isl(0.6), DiffThresholds{});
  EXPECT_FALSE(kinds_of(no_changes).contains(SignatureKind::kIsl));
}

TEST(DiffModels, CrtShiftDetected) {
  auto with_crt = [](double base_ms) {
    ParsedLog log = chain_log(10, 50 * kMillisecond, kSecond);
    for (int i = 0; i < 20; ++i) {
      log.crt_samples_ms.push_back(base_ms + 0.01 * (i % 5));
    }
    return model_from(log);
  };
  const auto changes =
      diff_models(with_crt(0.2), with_crt(4.0), DiffThresholds{});
  EXPECT_TRUE(kinds_of(changes).contains(SignatureKind::kCrt));
}

TEST(SignatureKindNames, AllNamed) {
  EXPECT_STREQ(to_string(SignatureKind::kCg), "CG");
  EXPECT_STREQ(to_string(SignatureKind::kCrt), "CRT");
  EXPECT_TRUE(is_infra(SignatureKind::kPt));
  EXPECT_TRUE(is_infra(SignatureKind::kIsl));
  EXPECT_FALSE(is_infra(SignatureKind::kDd));
}

}  // namespace
}  // namespace flowdiff::core
