#!/usr/bin/env bash
# Minimal CI for FlowDiff:
#   1. tier-1 verify: configure, build, and run the full test suite;
#   2. AddressSanitizer pass: rebuild with FLOWDIFF_SANITIZE=address and
#      rerun ctest, then rerun the telemetry-plane suite (ctest -L http)
#      so its verdict is visible on its own in the transcript;
#   3. UndefinedBehaviorSanitizer pass: rebuild with
#      FLOWDIFF_SANITIZE=undefined and rerun the obs-layer tests (the
#      sampler/recorder/watchdog code paths PRs keep touching), plus the
#      ingest legs: the golden-trace corpus (ctest -L corpus) and the
#      seeded-corruption fuzz suites (ctest -L fuzz) — corrupted captures
#      are exactly where out-of-range arithmetic would hide — the
#      adversarial-scenario suites (ctest -L attack: attack generators,
#      diagnosis refinement, determinism pins), and the serve/provenance
#      suites, which previously only reran under ASan/TSan;
#   4. ThreadSanitizer pass: rebuild with FLOWDIFF_SANITIZE=thread and
#      rerun the concurrency-heavy suites (executor pool, parallel model
#      build, monitor pipeline thread, obs layer), plus the http-labeled
#      telemetry-plane suite — scraping a live monitor is the cross-thread
#      read path most likely to hide a race — the provenance-labeled
#      suites (provenance records are built on the window-processing
#      thread and read from the serve thread and explain CLI), and the
#      serve-labeled daemon suites: MonitorManager schedules per-tenant
#      shards across a worker pool while the telemetry plane reads them;
#   5. corruption sweep: run bench/corruption_sweep in the UBSan tree —
#      diagnosis accuracy vs corruption rate, end to end under the
#      sanitizer;
#   6. throughput bench: run bench/throughput_replay (full timed leg, the
#      uninstrumented tier-1 tree) over the golden-trace corpus and
#      refresh BENCH_throughput.json at the repo root — the recorded perf
#      trajectory every PR extends. Sanitizer trees skip the timed leg but
#      still cover the code path once via the ctest case labeled `bench`
#      (ThroughputReplay.Quick) that the full ASan suite includes.
#
# Usage: tools/ci.sh [--skip-asan] [--skip-ubsan] [--skip-tsan]
# Run from anywhere; build trees land in <repo>/build-ci{,-asan,-ubsan,-tsan}.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_asan=0
skip_ubsan=0
skip_tsan=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) skip_asan=1 ;;
    --skip-ubsan) skip_ubsan=1 ;;
    --skip-tsan) skip_tsan=1 ;;
    *)
      echo "unknown flag: $arg" >&2
      exit 2
      ;;
  esac
done

run_suite() {
  local build_dir="$1"
  shift
  local ctest_filter=""
  if [[ "${1:-}" == --tests=* ]]; then
    ctest_filter="${1#--tests=}"
    shift
  fi
  cmake -B "$build_dir" -S "$repo" "$@"
  cmake --build "$build_dir" -j "$jobs"
  if [[ -n "$ctest_filter" ]]; then
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" \
      --no-tests=error -R "$ctest_filter"
  else
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  fi
}

echo "== tier-1: build + ctest =="
run_suite "$repo/build-ci"

echo "== bench: corpus ingest throughput (BENCH_throughput.json) =="
# Timed leg on the uninstrumented tree only; it also re-pins every
# committed .golden transcript byte for byte before reporting numbers.
"$repo/build-ci/bench/throughput_replay" --out="$repo/BENCH_throughput.json"

echo "== bench: adversarial recall/false-alarm sweep (BENCH_attack.json) =="
# Gated: nominal-intensity recall >= 0.9 with zero steady false alarms, or
# the sweep exits nonzero and CI fails here.
"$repo/build-ci/bench/attack_sweep" --out="$repo/BENCH_attack.json"

if [[ "$skip_asan" -eq 0 ]]; then
  echo "== ASan: build + ctest (FLOWDIFF_SANITIZE=address) =="
  run_suite "$repo/build-ci-asan" -DFLOWDIFF_SANITIZE=address
  # The full suite above already ran these; the labeled rerun makes the
  # ingest legs' verdicts visible on their own in the CI transcript.
  echo "== ASan: golden corpus + corruption fuzz (ctest -L corpus/fuzz) =="
  ctest --test-dir "$repo/build-ci-asan" --output-on-failure -j "$jobs" \
    --no-tests=error -L 'corpus|fuzz'
  echo "== ASan: telemetry plane (ctest -L http) =="
  ctest --test-dir "$repo/build-ci-asan" --output-on-failure -j "$jobs" \
    --no-tests=error -L http
  echo "== ASan: serve daemon (ctest -L serve) =="
  ctest --test-dir "$repo/build-ci-asan" --output-on-failure -j "$jobs" \
    --no-tests=error -L serve
  # Delta-maintained window modeling: the pools recycling window storage
  # between feed and pipeline threads are exactly where a stale pointer
  # would hide.
  echo "== ASan: incremental window modeling (ctest -L incremental) =="
  ctest --test-dir "$repo/build-ci-asan" --output-on-failure -j "$jobs" \
    --no-tests=error -L incremental
fi

if [[ "$skip_ubsan" -eq 0 ]]; then
  echo "== UBSan: build + obs tests (FLOWDIFF_SANITIZE=undefined) =="
  run_suite "$repo/build-ci-ubsan" \
    "--tests=^(ObsTest|TimeseriesTest|FlightRecorderTest|ReportTest)\." \
    -DFLOWDIFF_SANITIZE=undefined
  echo "== UBSan: golden corpus + corruption fuzz (ctest -L corpus/fuzz) =="
  ctest --test-dir "$repo/build-ci-ubsan" --output-on-failure -j "$jobs" \
    --no-tests=error -L 'corpus|fuzz'
  echo "== UBSan: adversarial scenario suites (ctest -L attack) =="
  ctest --test-dir "$repo/build-ci-ubsan" --output-on-failure -j "$jobs" \
    --no-tests=error -L attack
  # serve/provenance previously reran only under ASan/TSan; integer-heavy
  # demux and stage-latency math deserve the UBSan pass too.
  echo "== UBSan: serve daemon + alarm provenance (ctest -L serve/provenance) =="
  ctest --test-dir "$repo/build-ci-ubsan" --output-on-failure -j "$jobs" \
    --no-tests=error -L 'serve|provenance'
  # The incremental modeler's streaming aggregates (histogram binning,
  # running sums, per-segment re-bucketing) are arithmetic-dense; UBSan
  # guards the oracle-identity sweep's math.
  echo "== UBSan: incremental window modeling (ctest -L incremental) =="
  ctest --test-dir "$repo/build-ci-ubsan" --output-on-failure -j "$jobs" \
    --no-tests=error -L incremental
  echo "== UBSan: corruption sweep bench (quick) =="
  "$repo/build-ci-ubsan/bench/corruption_sweep" --quick
  echo "== UBSan: attack sweep bench (quick) =="
  "$repo/build-ci-ubsan/bench/attack_sweep" --quick \
    --out="$repo/build-ci-ubsan/bench_attack_quick.json"
fi

if [[ "$skip_tsan" -eq 0 ]]; then
  echo "== TSan: build + concurrency tests (FLOWDIFF_SANITIZE=thread) =="
  run_suite "$repo/build-ci-tsan" \
    "--tests=^(ExecutorTest|ParallelModel|MonitorPipeline|IncrementalModel|SlidingMonitor|ObsTest|TimeseriesTest|FlightRecorderTest)\." \
    -DFLOWDIFF_SANITIZE=thread
  # The scrape path is where a torn window commit would surface as a data
  # race: the serve thread reading monitor state while feed/pipeline
  # threads commit windows.
  echo "== TSan: telemetry plane under scrape load (ctest -L http) =="
  ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -j "$jobs" \
    --no-tests=error -L http
  # Provenance rings commit on the window-processing thread and are read
  # concurrently by /provenance scrapes and the explain CLI.
  echo "== TSan: alarm provenance (ctest -L provenance) =="
  ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -j "$jobs" \
    --no-tests=error -L provenance
  # The serve daemon is the most concurrent thing in the tree: per-tenant
  # shard tasks on the manager pool, live sources on the serve loop, and
  # the telemetry plane reading shard state from its own thread.
  echo "== TSan: serve daemon (ctest -L serve) =="
  ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -j "$jobs" \
    --no-tests=error -L serve
  # Incremental window state moves feed thread -> pending queue -> pipeline
  # thread -> recycling pool -> feed thread; the idle/busy alternation test
  # drives that handoff under TSan.
  echo "== TSan: incremental window modeling (ctest -L incremental) =="
  ctest --test-dir "$repo/build-ci-tsan" --output-on-failure -j "$jobs" \
    --no-tests=error -L incremental
fi

echo "CI passed."
