#include "obs/metrics.h"

#include <algorithm>

namespace flowdiff::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= target) {
      // Bin midpoint, clamped to the observed range: at tiny counts the
      // midpoint of a wide bin can land outside [min, max] (e.g. two
      // observations in one bin reporting p99 above the larger one), and a
      // quantile must never exceed the extremes actually seen.
      const double mid = origin + bin_width * (static_cast<double>(i) + 0.5);
      return std::clamp(mid, min, max);
    }
  }
  return max;
}

void LatencyHistogram::observe(double value) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (hist_.total() == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  hist_.add(value);
  sum_ += value;
}

std::uint64_t LatencyHistogram::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hist_.total();
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.bin_width = hist_.bin_width();
  snap.origin = hist_.origin();
  snap.count = hist_.total();
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.counts = hist_.counts();
  while (!snap.counts.empty() && snap.counts.back() == 0) {
    snap.counts.pop_back();
  }
  return snap;
}

void LatencyHistogram::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  hist_ = Histogram(hist_.bin_width(), hist_.origin());
  sum_ = min_ = max_ = 0.0;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& Registry::histogram(std::string_view name, double bin_width,
                                      double origin) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>(bin_width, origin))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name,
                             GaugeSnapshot{gauge->value(), gauge->peak()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace_back(name, hist->snapshot());
  }
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace flowdiff::obs
