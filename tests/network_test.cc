// End-to-end tests of the reactive OpenFlow data-plane simulation: control
// traffic causality, buffering, table hits on reuse, timeouts/FlowRemoved,
// loss, and fault hooks.
#include "simnet/network.h"

#include <gtest/gtest.h>

#include "controller/controller.h"

namespace flowdiff::sim {
namespace {

struct Fixture {
  Topology build() {
    Topology topo;
    h1 = topo.add_host("h1", Ipv4(10, 0, 0, 1));
    h2 = topo.add_host("h2", Ipv4(10, 0, 0, 2));
    sw1 = topo.add_of_switch("sw1");
    sw2 = topo.add_of_switch("sw2");
    topo.connect(h1.value, sw1.value);
    topo.connect(sw1.value, sw2.value);
    topo.connect(sw2.value, h2.value);
    return topo;
  }

  explicit Fixture(NetworkConfig config = {})
      : net(build(), config),
        controller(net, ControllerId{0}, ctrl::ControllerConfig{}) {
    net.set_controller(&controller);
  }

  of::FlowKey key(std::uint16_t src_port = 40000,
                  std::uint16_t dst_port = 80) const {
    return of::FlowKey{Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), src_port,
                       dst_port, of::Proto::kTcp};
  }

  HostId h1, h2;
  SwitchId sw1, sw2;
  Network net;
  ctrl::Controller controller;
};

TEST(Network, FirstFlowRaisesPacketInPerSwitch) {
  Fixture f;
  bool delivered = false;
  FlowSpec spec;
  spec.key = f.key();
  spec.bytes = 3000;
  spec.duration = 10 * kMillisecond;
  spec.on_delivered = [&](const DeliveryInfo& info) {
    delivered = true;
    EXPECT_GT(info.complete, info.first_packet);
  };
  EXPECT_NE(f.net.start_flow(std::move(spec)), 0u);
  f.net.events().run_until(5 * kSecond);

  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.net.packet_in_count(), 2u);  // One per OpenFlow switch.
  EXPECT_EQ(f.controller.log().count<of::PacketIn>(), 2u);
  EXPECT_EQ(f.controller.log().count<of::FlowMod>(), 2u);
  EXPECT_EQ(f.controller.log().count<of::PacketOut>(), 2u);
}

TEST(Network, UnknownEndpointFails) {
  Fixture f;
  FlowSpec spec;
  spec.key = of::FlowKey{Ipv4(1, 1, 1, 1), Ipv4(10, 0, 0, 2), 1, 2,
                         of::Proto::kTcp};
  EXPECT_EQ(f.net.start_flow(std::move(spec)), 0u);
}

TEST(Network, ReusedConnectionRaisesNoNewPacketIn) {
  Fixture f;
  FlowSpec first;
  first.key = f.key();
  f.net.start_flow(std::move(first));
  f.net.events().run_until(kSecond);
  const auto after_first = f.net.packet_in_count();
  EXPECT_EQ(after_first, 2u);

  // Same 5-tuple again while the entries are installed: pure table hits.
  bool delivered = false;
  FlowSpec second;
  second.key = f.key();
  second.on_delivered = [&](const DeliveryInfo&) { delivered = true; };
  f.net.start_flow(std::move(second));
  f.net.events().run_until(2 * kSecond);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.net.packet_in_count(), after_first);
}

TEST(Network, NewConnectionAfterExpiryTriggersControlTrafficAgain) {
  NetworkConfig config;
  config.idle_timeout = kSecond;
  Fixture f(config);
  FlowSpec first;
  first.key = f.key();
  first.duration = 10 * kMillisecond;
  f.net.start_flow(std::move(first));
  // Run far past idle expiry.
  f.net.events().run_until(10 * kSecond);
  EXPECT_EQ(f.controller.log().count<of::FlowRemoved>(), 2u);

  FlowSpec again;
  again.key = f.key();
  f.net.start_flow(std::move(again));
  f.net.events().run_until(15 * kSecond);
  EXPECT_EQ(f.net.packet_in_count(), 4u);
}

TEST(Network, FlowRemovedCarriesCounters) {
  NetworkConfig config;
  config.idle_timeout = kSecond;
  Fixture f(config);
  FlowSpec spec;
  spec.key = f.key();
  spec.bytes = 14600;  // 10 packets.
  spec.duration = 20 * kMillisecond;
  f.net.start_flow(std::move(spec));
  f.net.events().run_until(10 * kSecond);

  int removed_seen = 0;
  for (const auto& e : f.controller.log().events()) {
    if (const auto* fr = std::get_if<of::FlowRemoved>(&e.msg)) {
      ++removed_seen;
      // First packet accounted at install + the chunked transfer.
      EXPECT_GE(fr->byte_count, 14600u);
      EXPECT_GE(fr->packet_count, 10u);
      EXPECT_GT(fr->duration, 0);
    }
  }
  EXPECT_EQ(removed_seen, 2);
}

TEST(Network, FlowRemovedCanBeDisabled) {
  NetworkConfig config;
  config.idle_timeout = kSecond;
  config.send_flow_removed = false;
  Fixture f(config);
  FlowSpec spec;
  spec.key = f.key();
  f.net.start_flow(std::move(spec));
  f.net.events().run_until(10 * kSecond);
  EXPECT_EQ(f.controller.log().count<of::FlowRemoved>(), 0u);
}

TEST(Network, LossAddsRetransmissionBytesAndDelay) {
  NetworkConfig lossless_cfg;
  lossless_cfg.idle_timeout = kSecond;
  NetworkConfig lossy_cfg = lossless_cfg;

  auto run = [](NetworkConfig config, double loss) {
    Fixture f(config);
    if (loss > 0) {
      // Loss on the sw1-sw2 link.
      Link* link = f.net.topology().link_between(f.sw1.value, f.sw2.value);
      link->loss_rate = loss;
    }
    SimTime completed = 0;
    std::uint64_t removed_bytes = 0;
    FlowSpec spec;
    spec.key = f.key();
    spec.bytes = 146000;  // 100 packets: expected ~5 retx at 5% loss.
    spec.duration = 50 * kMillisecond;
    spec.on_delivered = [&](const DeliveryInfo& info) {
      completed = info.complete;
    };
    f.net.start_flow(std::move(spec));
    f.net.events().run_until(20 * kSecond);
    for (const auto& e : f.controller.log().events()) {
      if (const auto* fr = std::get_if<of::FlowRemoved>(&e.msg)) {
        removed_bytes = std::max(removed_bytes, fr->byte_count);
      }
    }
    return std::pair{completed, removed_bytes};
  };

  const auto [clean_time, clean_bytes] = run(lossless_cfg, 0.0);
  const auto [lossy_time, lossy_bytes] = run(lossy_cfg, 0.05);
  EXPECT_GT(lossy_bytes, clean_bytes);
  EXPECT_GT(lossy_time, clean_time);
}

TEST(Network, DownSwitchFailsFlows) {
  Fixture f;
  f.net.set_node_up(f.sw2.value, false);
  bool failed = false;
  FlowSpec spec;
  spec.key = f.key();
  spec.on_failed = [&](SimTime) { failed = true; };
  spec.on_delivered = [](const DeliveryInfo&) { FAIL() << "delivered"; };
  f.net.start_flow(std::move(spec));
  f.net.events().run_until(5 * kSecond);
  EXPECT_TRUE(failed);
}

TEST(Network, BlockedPortFailsAtHostButStillRaisesPacketIns) {
  Fixture f;
  f.net.set_port_block(Ipv4(10, 0, 0, 2), 80, true);
  bool failed = false;
  FlowSpec spec;
  spec.key = f.key();
  spec.on_failed = [&](SimTime) { failed = true; };
  f.net.start_flow(std::move(spec));
  f.net.events().run_until(5 * kSecond);
  EXPECT_TRUE(failed);
  // The network still routed it: both switches asked the controller.
  EXPECT_EQ(f.net.packet_in_count(), 2u);

  // Other ports unaffected.
  f.net.set_port_block(Ipv4(10, 0, 0, 2), 80, false);
  bool delivered = false;
  FlowSpec ok;
  ok.key = f.key(40001, 80);
  ok.on_delivered = [&](const DeliveryInfo&) { delivered = true; };
  f.net.start_flow(std::move(ok));
  f.net.events().run_until(10 * kSecond);
  EXPECT_TRUE(delivered);
}

TEST(Network, HostExtraDelayShiftsCompletion) {
  auto run = [](SimDuration extra) {
    Fixture f;
    if (extra > 0) f.net.set_host_extra_delay(f.h2, extra);
    SimTime completed = 0;
    FlowSpec spec;
    spec.key = f.key();
    spec.duration = 10 * kMillisecond;
    spec.on_delivered = [&](const DeliveryInfo& info) {
      completed = info.complete;
    };
    f.net.start_flow(std::move(spec));
    f.net.events().run_until(5 * kSecond);
    return completed;
  };
  const SimTime base = run(0);
  const SimTime slowed = run(40 * kMillisecond);
  EXPECT_GT(base, 0);
  EXPECT_NEAR(static_cast<double>(slowed - base), 40e3, 5e3);
}

TEST(Network, BackgroundLoadStretchesTransfers) {
  auto run = [](bool congested) {
    Fixture f;
    std::vector<LinkId> loaded;
    if (congested) {
      loaded = f.net.add_background_load(f.h1, f.h2, 0.9e9);
      EXPECT_FALSE(loaded.empty());
    }
    SimTime completed = 0;
    FlowSpec spec;
    spec.key = f.key();
    spec.duration = 20 * kMillisecond;
    spec.on_delivered = [&](const DeliveryInfo& info) {
      completed = info.complete;
    };
    f.net.start_flow(std::move(spec));
    f.net.events().run_until(5 * kSecond);
    return completed;
  };
  EXPECT_GT(run(true), run(false) + 10 * kMillisecond);
}

TEST(Network, UndersizedTableChurns) {
  // A 4-entry table serving 20 concurrent connections thrashes: evictions
  // raise FlowRemoved(kDelete) and previously-installed flows miss again —
  // the PacketIn churn an operator sees when TCAM is too small.
  NetworkConfig config;
  config.switch_table_capacity = 4;
  Fixture f(config);
  for (int round = 0; round < 3; ++round) {
    for (std::uint16_t i = 0; i < 20; ++i) {
      const SimTime at = f.net.now() + round * kSecond +
                         i * 10 * kMillisecond;
      const auto key = f.key(static_cast<std::uint16_t>(41000 + i));
      f.net.events().schedule(at, [&f, key] {
        sim::FlowSpec spec;
        spec.key = key;
        f.net.start_flow(std::move(spec));
      });
    }
  }
  f.net.events().run_until(20 * kSecond);

  // With unbounded tables, 20 connections -> 40 PacketIns (2 switches) and
  // later rounds all hit. With capacity 4 the same traffic re-misses.
  EXPECT_GT(f.net.packet_in_count(), 60u);
  std::size_t deletes = 0;
  for (const auto& e : f.controller.log().events()) {
    if (const auto* fr = std::get_if<of::FlowRemoved>(&e.msg)) {
      if (fr->reason == of::RemovedReason::kDelete) ++deletes;
    }
  }
  EXPECT_GT(deletes, 20u);
  // The table never exceeds its capacity.
  EXPECT_LE(f.net.flow_table(f.sw1).size(), 4u);
}

TEST(Network, ProactiveRulesSuppressControlTraffic) {
  Fixture f;
  f.controller.install_proactive_rules();
  bool delivered = false;
  FlowSpec spec;
  spec.key = f.key();
  spec.on_delivered = [&](const DeliveryInfo&) { delivered = true; };
  f.net.start_flow(std::move(spec));
  f.net.events().run_until(5 * kSecond);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.net.packet_in_count(), 0u);
}

TEST(Network, WildcardRulesCoverSecondConnection) {
  Fixture f;
  ctrl::ControllerConfig wc_config;
  wc_config.granularity = ctrl::RuleGranularity::kHostPair;
  ctrl::Controller wildcard_ctrl(f.net, ControllerId{1}, wc_config);
  f.net.set_controller(&wildcard_ctrl);

  FlowSpec first;
  first.key = f.key(40000, 80);
  f.net.start_flow(std::move(first));
  f.net.events().run_until(kSecond);
  EXPECT_EQ(f.net.packet_in_count(), 2u);

  // Different ports, same host pair: covered by the wildcard entries.
  bool delivered = false;
  FlowSpec second;
  second.key = f.key(41234, 443);
  second.on_delivered = [&](const DeliveryInfo&) { delivered = true; };
  f.net.start_flow(std::move(second));
  f.net.events().run_until(2 * kSecond);
  EXPECT_TRUE(delivered);
  EXPECT_EQ(f.net.packet_in_count(), 2u);
}

}  // namespace
}  // namespace flowdiff::sim
