file(REMOVE_RECURSE
  "CMakeFiles/tasks_test.dir/tasks_test.cc.o"
  "CMakeFiles/tasks_test.dir/tasks_test.cc.o.d"
  "tasks_test"
  "tasks_test.pdb"
  "tasks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tasks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
