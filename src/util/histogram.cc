#include "util/histogram.h"

#include <algorithm>
#include <cmath>

namespace flowdiff {

Histogram::Histogram(double bin_width, double origin)
    : bin_width_(bin_width), origin_(origin) {}

void Histogram::add(double value) {
  double offset = value - origin_;
  if (offset < 0.0) offset = 0.0;
  const auto bin = static_cast<std::size_t>(offset / bin_width_);
  if (bin >= counts_.size()) counts_.resize(bin + 1, 0);
  ++counts_[bin];
  ++total_;
}

std::uint64_t Histogram::count_at(std::size_t bin) const {
  return bin < counts_.size() ? counts_[bin] : 0;
}

double Histogram::bin_center(std::size_t bin) const {
  return origin_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

std::size_t Histogram::mode_bin() const {
  if (counts_.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::vector<Histogram::Peak> Histogram::peaks(double min_fraction) const {
  std::vector<Peak> out;
  if (total_ == 0) return out;
  const double min_count =
      min_fraction * static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t here = counts_[i];
    if (static_cast<double>(here) < min_count || here == 0) continue;
    const std::uint64_t left = i > 0 ? counts_[i - 1] : 0;
    const std::uint64_t right = i + 1 < counts_.size() ? counts_[i + 1] : 0;
    const bool local_max = here >= left && here >= right &&
                           (here > left || here > right ||
                            (left == 0 && right == 0));
    // Report only the first bin of a plateau.
    const bool plateau_continuation = i > 0 && counts_[i - 1] == here;
    if (local_max && !plateau_continuation) {
      out.push_back(Peak{bin_center(i), here,
                         static_cast<double>(here) /
                             static_cast<double>(total_)});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Peak& a, const Peak& b) { return a.count > b.count; });
  return out;
}

Histogram::Peak Histogram::top_peak() const {
  if (total_ == 0) return Peak{};
  const std::size_t bin = mode_bin();
  return Peak{bin_center(bin), counts_[bin],
              static_cast<double>(counts_[bin]) / static_cast<double>(total_)};
}

}  // namespace flowdiff
