#!/usr/bin/env bash
# Minimal CI for FlowDiff:
#   1. tier-1 verify: configure, build, and run the full test suite;
#   2. AddressSanitizer pass: rebuild with FLOWDIFF_SANITIZE=address and
#      rerun ctest.
#
# Usage: tools/ci.sh [--skip-asan]
# Run from anywhere; build trees land in <repo>/build-ci{,-asan}.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
skip_asan=0
[[ "${1:-}" == "--skip-asan" ]] && skip_asan=1

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
}

echo "== tier-1: build + ctest =="
run_suite "$repo/build-ci"

if [[ "$skip_asan" -eq 0 ]]; then
  echo "== ASan: build + ctest (FLOWDIFF_SANITIZE=address) =="
  run_suite "$repo/build-ci-asan" -DFLOWDIFF_SANITIZE=address
fi

echo "CI passed."
