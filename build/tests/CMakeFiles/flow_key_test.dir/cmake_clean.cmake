file(REMOVE_RECURSE
  "CMakeFiles/flow_key_test.dir/flow_key_test.cc.o"
  "CMakeFiles/flow_key_test.dir/flow_key_test.cc.o.d"
  "flow_key_test"
  "flow_key_test.pdb"
  "flow_key_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_key_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
