file(REMOVE_RECURSE
  "CMakeFiles/offline_diff.dir/offline_diff.cpp.o"
  "CMakeFiles/offline_diff.dir/offline_diff.cpp.o.d"
  "offline_diff"
  "offline_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
