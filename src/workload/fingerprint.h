// Controller fingerprinting / timing-probe attacker (Azzouni et al.): a
// compromised host emits trains of tiny single-packet flows whose 5-tuples
// never repeat, so every probe misses the flow table and round-trips
// through the controller. The trains are low-rate at the data plane (a few
// kb/s aimed at a service host, which the app-group extractor excludes), but
// they pile up in the controller's serial service loop — the attacker reads
// the response-time ramp to fingerprint the controller, and FlowDiff sees
// the same ramp as a controller response time (CRT) shift with no
// application-layer change at all.
#pragma once

#include <cstdint>

#include "simnet/network.h"
#include "util/rng.h"

namespace flowdiff::wl {

struct FingerprintSpec {
  /// Scales probes per train; 0 disables the attacker entirely.
  double intensity = 1.0;
  SimDuration train_interval = 500 * kMillisecond;
  int probes_per_train = 32;  ///< At intensity 1.0.
  /// Pacing between probes inside a train: back-to-back enough to queue in
  /// the controller, spaced enough to resolve the per-probe response ramp.
  SimDuration probe_gap = 40 * kMicrosecond;
  std::uint64_t probe_bytes = 90;
  SimDuration probe_duration = kMillisecond;
  std::uint16_t dst_port = 123;  ///< Service port probed (NTP by default).
  of::Proto proto = of::Proto::kUdp;
};

/// Schedules probe trains from one attacker host toward a target IP.
class FingerprintProber {
 public:
  FingerprintProber(sim::Network& net, HostId attacker, Ipv4 target,
                    FingerprintSpec spec, Rng rng);

  /// Schedules every train in [begin, end). Deterministic for a fixed seed.
  void start(SimTime begin, SimTime end);

  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  sim::Network& net_;
  HostId attacker_;
  Ipv4 target_;
  FingerprintSpec spec_;
  Rng rng_;
  /// Rotating ephemeral port keeps every probe's 5-tuple fresh so it can
  /// never match an installed rule.
  std::uint16_t next_src_port_ = 2000;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace flowdiff::wl
