#include "openflow/flow_key.h"

namespace flowdiff::of {

std::string to_string(Proto p) {
  switch (p) {
    case Proto::kTcp:
      return "tcp";
    case Proto::kUdp:
      return "udp";
    case Proto::kIcmp:
      return "icmp";
  }
  return "proto?";
}

std::string FlowKey::to_string() const {
  return src_ip.to_string() + ":" + std::to_string(src_port) + "->" +
         dst_ip.to_string() + ":" + std::to_string(dst_port) + "/" +
         of::to_string(proto);
}

}  // namespace flowdiff::of
