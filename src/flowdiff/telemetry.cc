#include "flowdiff/telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "flowdiff/monitor_manager.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "util/table.h"

namespace flowdiff::core {

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// CSV cell quoting: always quoted, inner quotes doubled — the quality and
/// decision columns contain commas and percent signs.
std::string csv_quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string quality_json(const ingest::StreamQuality& q) {
  std::string out = "{";
  out += "\"fed\":" + std::to_string(q.fed);
  out += ",\"kept\":" + std::to_string(q.kept);
  out += ",\"duplicates\":" + std::to_string(q.duplicates);
  out += ",\"reordered\":" + std::to_string(q.reordered);
  out += ",\"late_dropped\":" + std::to_string(q.late_dropped);
  out += ",\"truncated\":" + std::to_string(q.truncated);
  out += ",\"pairs_matched\":" + std::to_string(q.pairs_matched);
  out += ",\"orphan_packet_ins\":" + std::to_string(q.orphan_packet_ins);
  out += ",\"orphan_flow_mods\":" + std::to_string(q.orphan_flow_mods);
  out += "}";
  return out;
}

std::optional<obs::Severity> parse_severity(std::string_view name) {
  if (name == "debug") return obs::Severity::kDebug;
  if (name == "info") return obs::Severity::kInfo;
  if (name == "warn") return obs::Severity::kWarn;
  if (name == "error") return obs::Severity::kError;
  return std::nullopt;
}

obs::HttpResponse text_response(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

obs::HttpResponse no_monitor_response() {
  obs::HttpResponse response;
  response.status = 503;
  response.content_type = "application/json";
  response.body = "{\"error\":\"no monitor attached\"}\n";
  return response;
}

obs::HttpResponse json_error(int status, std::string_view message) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":\"" + json_escape(message) + "\"}\n";
  return response;
}

/// Parses an optional ?from=/?to= time bound (seconds, decimal). Leaves
/// *out untouched when the parameter is absent; returns false when it is
/// present but not a number.
bool parse_time_bound(const std::optional<std::string>& raw, double* out) {
  if (!raw) return true;
  if (raw->empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

/// Same contract for unsigned integer parameters (?id=, ?limit=).
bool parse_u64_param(const std::optional<std::string>& raw,
                     std::uint64_t* out) {
  if (!raw) return true;
  if (raw->empty() || (*raw)[0] == '-') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw->c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

std::string render_health_json(const MonitorHealth& health) {
  std::string out = "{";
  out += std::string("\"healthy\":") + (health.healthy ? "true" : "false");
  out += ",\"reasons\":[";
  for (std::size_t i = 0; i < health.reasons.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + json_escape(health.reasons[i]) + '"';
  }
  out += "]";
  out += ",\"watchdog_alerts\":" + std::to_string(health.watchdog_alerts);
  out += ",\"pipeline_stalls\":" + std::to_string(health.pipeline_stalls);
  out += ",\"windows\":" + std::to_string(health.windows);
  out += ",\"alarms\":" + std::to_string(health.alarms);
  out += ",\"suppressed_changes\":" + std::to_string(health.suppressed_changes);
  out += std::string(",\"stream_degraded\":") +
         (health.stream_degraded ? "true" : "false");
  out += ",\"quality\":" + quality_json(health.quality);
  out += "}\n";
  return out;
}

std::string render_audits_csv(const MonitorSnapshot& snap) {
  std::string out =
      "index,window_begin_s,window_end_s,events,baseline,alarmed,"
      "rebaselined,changes,known,unknown,suppressed,degraded,quality,"
      "decision\n";
  for (const WindowAudit& audit : snap.audits) {
    out += std::to_string(audit.index);
    out += ',' + fmt_double(to_seconds(audit.window_begin), 3);
    out += ',' + fmt_double(to_seconds(audit.window_end), 3);
    out += ',' + std::to_string(audit.events);
    out += audit.baseline_capture ? ",1" : ",0";
    out += audit.alarmed ? ",1" : ",0";
    out += audit.rebaselined ? ",1" : ",0";
    out += ',' + std::to_string(audit.changes);
    out += ',' + std::to_string(audit.known);
    out += ',' + std::to_string(audit.unknown);
    out += ',' + std::to_string(audit.suppressed);
    out += audit.quality.degraded() ? ",1" : ",0";
    out += ',' + csv_quote(audit.quality.summary());
    out += ',' + csv_quote(audit.decision);
    out += '\n';
  }
  return out;
}

std::string render_audits_json(const MonitorSnapshot& snap) {
  std::string out = "{\"audits_dropped\":" + std::to_string(snap.audits_dropped);
  out += ",\"audits\":[";
  for (std::size_t i = 0; i < snap.audits.size(); ++i) {
    const WindowAudit& audit = snap.audits[i];
    if (i > 0) out += ',';
    out += "{\"index\":" + std::to_string(audit.index);
    out += ",\"window_begin_s\":" + fmt_double(to_seconds(audit.window_begin), 3);
    out += ",\"window_end_s\":" + fmt_double(to_seconds(audit.window_end), 3);
    out += ",\"events\":" + std::to_string(audit.events);
    out += std::string(",\"baseline\":") +
           (audit.baseline_capture ? "true" : "false");
    out += std::string(",\"alarmed\":") + (audit.alarmed ? "true" : "false");
    out += std::string(",\"rebaselined\":") +
           (audit.rebaselined ? "true" : "false");
    out += ",\"changes\":" + std::to_string(audit.changes);
    out += ",\"known\":" + std::to_string(audit.known);
    out += ",\"unknown\":" + std::to_string(audit.unknown);
    out += ",\"suppressed\":" + std::to_string(audit.suppressed);
    out += std::string(",\"degraded\":") +
           (audit.quality.degraded() ? "true" : "false");
    out += ",\"quality\":" + quality_json(audit.quality);
    out += ",\"decision\":\"" + json_escape(audit.decision) + "\"}";
  }
  out += "]}\n";
  return out;
}

std::string render_tenants_json(const std::vector<ShardStatus>& statuses) {
  std::string out = "{\"tenants\":[";
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    const ShardStatus& s = statuses[i];
    if (i > 0) out += ',';
    out += "{\"tenant\":\"" + json_escape(s.tenant) + "\"";
    out += std::string(",\"state\":\"") + to_string(s.state) + "\"";
    out += ",\"events\":" + std::to_string(s.events);
    out += ",\"dropped\":" + std::to_string(s.dropped);
    out += ",\"windows\":" + std::to_string(s.windows);
    out += ",\"alarms\":" + std::to_string(s.alarms);
    out += std::string(",\"healthy\":") + (s.healthy ? "true" : "false");
    if (!s.fault.empty()) {
      out += ",\"fault\":\"" + json_escape(s.fault) + "\"";
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string render_tenant_series_csv(const MonitorSnapshot& snap) {
  std::string out =
      "index,window_begin_s,window_end_s,events,changes,known,unknown,"
      "suppressed\n";
  for (const WindowAudit& audit : snap.audits) {
    out += std::to_string(audit.index);
    out += ',' + fmt_double(to_seconds(audit.window_begin), 3);
    out += ',' + fmt_double(to_seconds(audit.window_end), 3);
    out += ',' + std::to_string(audit.events);
    out += ',' + std::to_string(audit.changes);
    out += ',' + std::to_string(audit.known);
    out += ',' + std::to_string(audit.unknown);
    out += ',' + std::to_string(audit.suppressed);
    out += '\n';
  }
  return out;
}

std::string render_tenant_series_json(const MonitorSnapshot& snap) {
  std::string out = "{\"series\":[";
  for (std::size_t i = 0; i < snap.audits.size(); ++i) {
    const WindowAudit& audit = snap.audits[i];
    if (i > 0) out += ',';
    out += "{\"index\":" + std::to_string(audit.index);
    out += ",\"window_begin_s\":" + fmt_double(to_seconds(audit.window_begin), 3);
    out += ",\"window_end_s\":" + fmt_double(to_seconds(audit.window_end), 3);
    out += ",\"events\":" + std::to_string(audit.events);
    out += ",\"changes\":" + std::to_string(audit.changes);
    out += ",\"known\":" + std::to_string(audit.known);
    out += ",\"unknown\":" + std::to_string(audit.unknown);
    out += ",\"suppressed\":" + std::to_string(audit.suppressed) + "}";
  }
  out += "]}\n";
  return out;
}

TelemetryPlane::TelemetryPlane(TelemetryConfig config)
    : config_(std::move(config)), server_(config_.http) {
  register_routes();
}

TelemetryPlane::~TelemetryPlane() { stop(); }

void TelemetryPlane::attach(const SlidingMonitor* monitor) {
  monitor_.store(monitor, std::memory_order_release);
}

void TelemetryPlane::attach_manager(const MonitorManager* manager) {
  manager_.store(manager, std::memory_order_release);
}

bool TelemetryPlane::start() { return server_.start(); }

void TelemetryPlane::stop() {
  server_.stop();
  // The server thread is joined: no handler can observe the monitor or
  // manager anymore, so the caller may destroy them after stop() returns.
  monitor_.store(nullptr, std::memory_order_release);
  manager_.store(nullptr, std::memory_order_release);
}

void TelemetryPlane::register_routes() {
  server_.handle("/", [](const obs::HttpRequest&) {
    return text_response(
        200,
        "flowdiff telemetry plane\n"
        "  /metrics     Prometheus exposition (registry + span aggregates)\n"
        "  /healthz     health verdict (JSON; 503 once degraded)\n"
        "  /series      sampled time series (?format=csv|json, ?from=/?to= "
        "seconds)\n"
        "  /recorder    flight-recorder excerpt (?min_severity=debug|info|"
        "warn|error)\n"
        "  /audits      per-window audit trail (?format=csv|json, "
        "?from=/?to= seconds)\n"
        "  /provenance  alarm provenance records (JSON; ?id=N or ?limit=N)\n"
        "  /report      run report (?format=md|html)\n"
        "  /tenants     multi-tenant shard registry (serve mode); per-tenant\n"
        "               /tenants/<id>/{healthz,series,audits,provenance,"
        "report,transcript}\n");
  });

  server_.handle("/metrics", [this](const obs::HttpRequest&) {
    obs::update_process_gauges();
    obs::HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body =
        obs::render_prometheus(obs::snapshot(), config_.prometheus_prefix);
    return response;
  });

  server_.handle("/healthz", [this](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    const SlidingMonitor* m = monitor();
    if (m != nullptr) {
      const MonitorHealth health = m->health();
      response.status = health.healthy ? 200 : 503;
      response.body = render_health_json(health);
      return response;
    }
    if (const MonitorManager* mgr = manager()) {
      // Aggregate verdict: any shard degrading or faulting flips the
      // whole daemon's health check — a load balancer should stop
      // trusting a diagnoser that cannot vouch for every tenant.
      const MonitorHealth health = mgr->aggregate_health();
      response.status = health.healthy ? 200 : 503;
      response.body = render_health_json(health);
      return response;
    }
    // A plane with nothing attached is alive but idle; report healthy so
    // a scraper between replay stages sees liveness, not an outage.
    response.body = "{\"healthy\":true,\"monitor_attached\":false}\n";
    return response;
  });

  server_.handle("/series", [](const obs::HttpRequest& request) {
    const std::string format = request.param("format").value_or("csv");
    double from = -std::numeric_limits<double>::infinity();
    double to = std::numeric_limits<double>::infinity();
    if (!parse_time_bound(request.param("from"), &from)) {
      return json_error(400, "unparseable from bound: " +
                                 request.param("from").value_or(""));
    }
    if (!parse_time_bound(request.param("to"), &to)) {
      return json_error(400, "unparseable to bound: " +
                                 request.param("to").value_or(""));
    }
    obs::HttpResponse response;
    if (format != "json" && format != "csv") {
      return text_response(400, "unknown format: " + format + "\n");
    }
    const bool range_query =
        request.param("from").has_value() || request.param("to").has_value();
    if (!range_query) {
      // Full ring: render straight from the sampler (stride preserved).
      response.content_type = format == "json"
                                  ? "application/json"
                                  : "text/csv; charset=utf-8";
      response.body = format == "json"
                          ? obs::render_series_json(obs::Sampler::global())
                          : obs::render_series_csv(obs::Sampler::global());
      return response;
    }
    // Delta scrape: keep only the points whose bucket overlaps [from, to];
    // series left with nothing are dropped from the response.
    std::vector<std::pair<std::string, std::vector<obs::SeriesPoint>>> kept;
    for (const auto& [name, series] : obs::Sampler::global().series()) {
      std::vector<obs::SeriesPoint> points;
      for (const obs::SeriesPoint& p : series.points()) {
        if (p.t_end >= from && p.t_begin <= to) points.push_back(p);
      }
      if (!points.empty()) kept.emplace_back(name, std::move(points));
    }
    response.content_type = format == "json" ? "application/json"
                                             : "text/csv; charset=utf-8";
    response.body = format == "json" ? obs::render_series_json(kept)
                                     : obs::render_series_csv(kept);
    return response;
  });

  server_.handle("/recorder", [](const obs::HttpRequest& request) {
    const std::string name = request.param("min_severity").value_or("debug");
    const auto severity = parse_severity(name);
    if (!severity) {
      return text_response(400, "unknown min_severity: " + name + "\n");
    }
    std::string body;
    for (const obs::FlightEvent& event :
         obs::FlightRecorder::global().events(*severity)) {
      body += obs::render_flight_event(event);
      body += '\n';
    }
    return text_response(200, std::move(body));
  });

  server_.handle("/audits", [this](const obs::HttpRequest& request) {
    const SlidingMonitor* m = monitor();
    if (m == nullptr) return no_monitor_response();
    const std::string format = request.param("format").value_or("csv");
    double from = -std::numeric_limits<double>::infinity();
    double to = std::numeric_limits<double>::infinity();
    if (!parse_time_bound(request.param("from"), &from)) {
      return json_error(400, "unparseable from bound: " +
                                 request.param("from").value_or(""));
    }
    if (!parse_time_bound(request.param("to"), &to)) {
      return json_error(400, "unparseable to bound: " +
                                 request.param("to").value_or(""));
    }
    MonitorSnapshot snap = m->snapshot();
    if (request.param("from").has_value() ||
        request.param("to").has_value()) {
      // Keep audits whose window overlaps [from, to] seconds.
      std::vector<WindowAudit> kept;
      for (WindowAudit& audit : snap.audits) {
        if (to_seconds(audit.window_end) >= from &&
            to_seconds(audit.window_begin) <= to) {
          kept.push_back(std::move(audit));
        }
      }
      snap.audits = std::move(kept);
    }
    obs::HttpResponse response;
    if (format == "json") {
      response.content_type = "application/json";
      response.body = render_audits_json(snap);
    } else if (format == "csv") {
      response.content_type = "text/csv; charset=utf-8";
      response.body = render_audits_csv(snap);
    } else {
      return text_response(400, "unknown format: " + format + "\n");
    }
    return response;
  });

  server_.handle("/provenance", [this](const obs::HttpRequest& request) {
    const SlidingMonitor* m = monitor();
    if (m == nullptr) return no_monitor_response();
    obs::HttpResponse response;
    response.content_type = "application/json";
    if (request.param("id").has_value()) {
      std::uint64_t id = 0;
      if (!parse_u64_param(request.param("id"), &id)) {
        return json_error(400, "unparseable id: " +
                                   request.param("id").value_or(""));
      }
      const auto record = m->find_provenance(id);
      if (!record) {
        return json_error(404, "no provenance record with id " +
                                   std::to_string(id) +
                                   " (unknown or rotated out)");
      }
      response.body = render_provenance_json(*record) + "\n";
      return response;
    }
    std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
    if (!parse_u64_param(request.param("limit"), &limit)) {
      return json_error(400, "unparseable limit: " +
                                 request.param("limit").value_or(""));
    }
    MonitorSnapshot snap = m->snapshot();
    if (limit < snap.provenance.size()) {
      // Newest N: the ring is oldest-first.
      snap.provenance.erase(snap.provenance.begin(),
                            snap.provenance.end() -
                                static_cast<std::ptrdiff_t>(limit));
    }
    response.body = render_provenance_collection_json(
        snap.provenance, snap.provenance_dropped);
    return response;
  });

  server_.handle("/tenants", [this](const obs::HttpRequest&) {
    const MonitorManager* mgr = manager();
    if (mgr == nullptr) return json_error(503, "no manager attached");
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = render_tenants_json(mgr->statuses());
    return response;
  });

  server_.handle_prefix("/tenants/", [this](const obs::HttpRequest& request) {
    return handle_tenants(request);
  });

  server_.handle("/report", [this](const obs::HttpRequest& request) {
    const SlidingMonitor* m = monitor();
    if (m == nullptr) return no_monitor_response();
    const std::string format = request.param("format").value_or("md");
    if (format != "md" && format != "html") {
      return text_response(400, "unknown format: " + format + "\n");
    }
    RunReportOptions options = config_.report;
    options.html = format == "html";
    obs::HttpResponse response;
    response.content_type = options.html ? "text/html; charset=utf-8"
                                         : "text/markdown; charset=utf-8";
    response.body =
        render_run_report(m->snapshot(), obs::Sampler::global(),
                          obs::FlightRecorder::global(), options);
    return response;
  });
}

obs::HttpResponse TelemetryPlane::handle_tenants(
    const obs::HttpRequest& request) const {
  const MonitorManager* mgr = manager();
  if (mgr == nullptr) return json_error(503, "no manager attached");

  // Path shape: /tenants/<id>[/<endpoint>]. The prefix route guarantees
  // the "/tenants/" head.
  constexpr std::string_view kPrefix = "/tenants/";
  std::string_view tail(request.path);
  tail.remove_prefix(kPrefix.size());
  const auto slash = tail.find('/');
  const std::string tenant(tail.substr(0, slash));
  const std::string endpoint(
      slash == std::string_view::npos ? "" : tail.substr(slash + 1));
  if (tenant.empty()) return json_error(404, "missing tenant id");

  const auto status = mgr->status(tenant);
  if (!status) return json_error(404, "unknown tenant: " + tenant);

  obs::HttpResponse response;
  response.content_type = "application/json";

  if (endpoint.empty()) {
    response.body = render_tenants_json({*status});
    return response;
  }
  if (endpoint == "healthz") {
    const auto health = mgr->health(tenant);
    if (!health) return json_error(404, "unknown tenant: " + tenant);
    response.status = health->healthy ? 200 : 503;
    response.body = render_health_json(*health);
    return response;
  }

  const auto snap = mgr->snapshot(tenant);
  if (!snap) return json_error(404, "unknown tenant: " + tenant);

  if (endpoint == "series") {
    const std::string format = request.param("format").value_or("csv");
    if (format == "json") {
      response.body = render_tenant_series_json(*snap);
    } else if (format == "csv") {
      response.content_type = "text/csv; charset=utf-8";
      response.body = render_tenant_series_csv(*snap);
    } else {
      return text_response(400, "unknown format: " + format + "\n");
    }
    return response;
  }
  if (endpoint == "audits") {
    const std::string format = request.param("format").value_or("csv");
    if (format == "json") {
      response.body = render_audits_json(*snap);
    } else if (format == "csv") {
      response.content_type = "text/csv; charset=utf-8";
      response.body = render_audits_csv(*snap);
    } else {
      return text_response(400, "unknown format: " + format + "\n");
    }
    return response;
  }
  if (endpoint == "provenance") {
    if (request.param("id").has_value()) {
      std::uint64_t id = 0;
      if (!parse_u64_param(request.param("id"), &id)) {
        return json_error(400, "unparseable id: " +
                                   request.param("id").value_or(""));
      }
      for (const ProvenanceRecord& record : snap->provenance) {
        if (record.id == id) {
          response.body = render_provenance_json(record) + "\n";
          return response;
        }
      }
      return json_error(404, "no provenance record with id " +
                                 std::to_string(id) +
                                 " (unknown or rotated out)");
    }
    response.body = render_provenance_collection_json(snap->provenance,
                                                      snap->provenance_dropped);
    return response;
  }
  if (endpoint == "report") {
    const std::string format = request.param("format").value_or("md");
    if (format != "md" && format != "html") {
      return text_response(400, "unknown format: " + format + "\n");
    }
    RunReportOptions options = config_.report;
    options.html = format == "html";
    response.content_type = options.html ? "text/html; charset=utf-8"
                                         : "text/markdown; charset=utf-8";
    response.body = render_run_report(*snap, obs::Sampler::global(),
                                      obs::FlightRecorder::global(), options);
    return response;
  }
  if (endpoint == "transcript") {
    // The deterministic monitor transcript for this shard — what the demux
    // goldens pin against the single-tenant corpus transcripts.
    response.content_type = "text/plain; charset=utf-8";
    response.body = render_monitor_transcript(*snap);
    return response;
  }
  return json_error(404, "no such tenant endpoint: " + endpoint);
}

}  // namespace flowdiff::core
