file(REMOVE_RECURSE
  "libflowdiff_simnet.a"
)
