# Empty dependencies file for app_signatures_test.
# This may be replaced when dependencies are built.
