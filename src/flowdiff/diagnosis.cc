#include "flowdiff/diagnosis.h"

#include <algorithm>
#include <cstdio>

namespace flowdiff::core {

const char* to_string(ProblemClass cls) {
  switch (cls) {
    case ProblemClass::kHostFailure:
      return "host failure";
    case ProblemClass::kHostPerformance:
      return "host performance";
    case ProblemClass::kAppFailure:
      return "application failure";
    case ProblemClass::kAppPerformance:
      return "application performance";
    case ProblemClass::kNetworkDisconnectivity:
      return "network disconnectivity";
    case ProblemClass::kNetworkBottleneck:
      return "network bottleneck / congestion";
    case ProblemClass::kSwitchMisconfig:
      return "switch misconfiguration";
    case ProblemClass::kSwitchOverhead:
      return "switch overhead";
    case ProblemClass::kControllerOverhead:
      return "controller overhead";
    case ProblemClass::kSwitchFailure:
      return "switch failure";
    case ProblemClass::kControllerFailure:
      return "controller failure";
    case ProblemClass::kUnauthorizedAccess:
      return "unauthorized access";
    case ProblemClass::kFingerprinting:
      return "controller fingerprinting (timing probes)";
    case ProblemClass::kVolumetricFlood:
      return "volumetric packet-in flood";
    case ProblemClass::kIncast:
      return "incast (many-to-one burst)";
  }
  return "?";
}

const std::vector<ProblemClass>& all_problem_classes() {
  static const std::vector<ProblemClass> kAll = {
      ProblemClass::kHostFailure,        ProblemClass::kHostPerformance,
      ProblemClass::kAppFailure,         ProblemClass::kAppPerformance,
      ProblemClass::kNetworkDisconnectivity,
      ProblemClass::kNetworkBottleneck,  ProblemClass::kSwitchMisconfig,
      ProblemClass::kSwitchOverhead,     ProblemClass::kControllerOverhead,
      ProblemClass::kSwitchFailure,      ProblemClass::kControllerFailure,
      ProblemClass::kUnauthorizedAccess, ProblemClass::kFingerprinting,
      ProblemClass::kVolumetricFlood,    ProblemClass::kIncast,
  };
  return kAll;
}

const std::map<ProblemClass, std::set<SignatureKind>>& problem_profiles() {
  using K = SignatureKind;
  static const std::map<ProblemClass, std::set<SignatureKind>> kProfiles = {
      {ProblemClass::kHostFailure, {K::kCg, K::kPc, K::kCi, K::kFs, K::kDd}},
      {ProblemClass::kHostPerformance, {K::kDd, K::kPc, K::kFs}},
      {ProblemClass::kAppFailure, {K::kCg, K::kPc, K::kCi, K::kFs}},
      {ProblemClass::kAppPerformance, {K::kDd, K::kPc, K::kFs}},
      {ProblemClass::kNetworkDisconnectivity,
       {K::kCg, K::kPc, K::kCi, K::kFs, K::kPt}},
      {ProblemClass::kNetworkBottleneck, {K::kDd, K::kPc, K::kFs, K::kIsl}},
      {ProblemClass::kSwitchMisconfig,
       {K::kCg, K::kPc, K::kCi, K::kFs, K::kDd, K::kPt}},
      {ProblemClass::kSwitchOverhead, {K::kDd, K::kPc, K::kFs, K::kIsl}},
      {ProblemClass::kControllerOverhead, {K::kDd, K::kPc, K::kFs, K::kCrt}},
      {ProblemClass::kSwitchFailure,
       {K::kCg, K::kPc, K::kCi, K::kFs, K::kPt}},
      {ProblemClass::kControllerFailure,
       {K::kCg, K::kPc, K::kCi, K::kFs, K::kDd, K::kCrt}},
      {ProblemClass::kUnauthorizedAccess, {K::kCg, K::kCi, K::kFs}},
      // Adversarial families. Fingerprinting probes target service hosts
      // the app-group extractor excludes, so only infrastructure
      // signatures move; floods add CRT pressure on top of the
      // unauthorized-access shape; incast congests the aggregator's access
      // path, dragging DD (and ISL when workers cross the fabric) along
      // with the fan-in.
      {ProblemClass::kFingerprinting, {K::kCrt, K::kIsl}},
      {ProblemClass::kVolumetricFlood, {K::kCg, K::kCi, K::kFs, K::kCrt}},
      {ProblemClass::kIncast, {K::kCg, K::kCi, K::kFs, K::kDd, K::kIsl}},
  };
  return kProfiles;
}

namespace {

int app_row(SignatureKind kind) {
  switch (kind) {
    case SignatureKind::kCg:
      return 0;
    case SignatureKind::kDd:
      return 1;
    case SignatureKind::kCi:
      return 2;
    case SignatureKind::kPc:
      return 3;
    case SignatureKind::kFs:
      return 4;
    default:
      return -1;
  }
}

int infra_col(SignatureKind kind) {
  switch (kind) {
    case SignatureKind::kPt:
      return 0;
    case SignatureKind::kIsl:
    case SignatureKind::kUtil:
      return 1;
    case SignatureKind::kCrt:
      return 2;
    default:
      return -1;
  }
}

constexpr const char* kRowNames[5] = {"CG", "DD", "CI", "PC", "FS"};
constexpr const char* kColNames[3] = {"PT", "ISL", "CC"};

}  // namespace

std::set<SignatureKind> DependencyMatrix::changed_kinds() const {
  static constexpr SignatureKind kRows[5] = {
      SignatureKind::kCg, SignatureKind::kDd, SignatureKind::kCi,
      SignatureKind::kPc, SignatureKind::kFs};
  static constexpr SignatureKind kCols[3] = {
      SignatureKind::kPt, SignatureKind::kIsl, SignatureKind::kCrt};
  std::set<SignatureKind> out;
  for (int r = 0; r < 5; ++r) {
    if (app_changed[static_cast<std::size_t>(r)]) out.insert(kRows[r]);
  }
  for (int c = 0; c < 3; ++c) {
    if (infra_changed[static_cast<std::size_t>(c)]) out.insert(kCols[c]);
  }
  return out;
}

std::string DependencyMatrix::render() const {
  std::string out = "      PT  ISL  CC\n";
  for (int r = 0; r < 5; ++r) {
    out += "  ";
    out += kRowNames[r];
    out += "  ";
    for (int c = 0; c < 3; ++c) {
      out += cells[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]
                 ? "  1 "
                 : "  0 ";
    }
    out += "\n";
  }
  return out;
}

DependencyMatrix build_dependency_matrix(const std::vector<Change>& unknown) {
  DependencyMatrix m;
  for (const auto& change : unknown) {
    const int r = app_row(change.kind);
    if (r >= 0) m.app_changed[static_cast<std::size_t>(r)] = true;
    const int c = infra_col(change.kind);
    if (c >= 0) m.infra_changed[static_cast<std::size_t>(c)] = true;
  }
  // A_ij = 1 when application signature i and infrastructure signature j
  // both changed (the co-occurrence the paper keys problem types on).
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 3; ++c) {
      m.cells[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          m.app_changed[static_cast<std::size_t>(r)] &&
          m.infra_changed[static_cast<std::size_t>(c)];
    }
  }
  return m;
}

std::vector<ProblemScore> classify(const DependencyMatrix& matrix,
                                   const std::vector<Change>& unknown) {
  bool anything_added = false;
  bool anything_removed = false;
  bool switch_disappeared = false;
  bool crt_changed = false;
  bool dd_changed = false;
  // Fan-in of newly appeared connectivity: how many added CG edges share
  // their most popular endpoint. A lone intruder adds one edge; a botnet
  // flood or an incast worker pool converges many new edges on one victim.
  std::map<Ipv4, int> added_endpoints;
  for (const auto& change : unknown) {
    anything_added |= change.direction == ChangeDirection::kAdded;
    anything_removed |= change.direction == ChangeDirection::kRemoved;
    crt_changed |= change.kind == SignatureKind::kCrt;
    dd_changed |= change.kind == SignatureKind::kDd;
    if (change.kind == SignatureKind::kPt &&
        change.direction == ChangeDirection::kRemoved &&
        change.description.find("disappeared") != std::string::npos) {
      switch_disappeared = true;
    }
    if (change.kind == SignatureKind::kCg &&
        change.direction == ChangeDirection::kAdded) {
      for (const auto& component : change.components) {
        if (component.ips.size() != 2) continue;  // per-edge changes only
        for (const Ipv4 ip : component.ips) ++added_endpoints[ip];
      }
    }
  }
  int max_fan_in = 0;
  for (const auto& [ip, count] : added_endpoints) {
    max_fan_in = std::max(max_fan_in, count);
  }
  const bool fan_in = max_fan_in >= 4;
  auto ranked = classify(matrix);
  for (auto& score : ranked) {
    const bool implies_new_connectivity =
        score.cls == ProblemClass::kUnauthorizedAccess ||
        score.cls == ProblemClass::kVolumetricFlood ||
        score.cls == ProblemClass::kIncast;
    const bool implies_lost_connectivity =
        score.cls == ProblemClass::kHostFailure ||
        score.cls == ProblemClass::kAppFailure ||
        score.cls == ProblemClass::kNetworkDisconnectivity ||
        score.cls == ProblemClass::kSwitchFailure;
    if (implies_new_connectivity && !anything_added) score.score *= 0.2;
    if (implies_lost_connectivity && anything_added && !anything_removed) {
      score.score *= 0.5;
    }
    // A switch vanishing from control traffic is the fingerprint of a
    // switch failure; without it, prefer the alternatives.
    if (score.cls == ProblemClass::kSwitchFailure) {
      score.score *= switch_disappeared ? 1.2 : 0.6;
    }
    // A controller-response-time shift points squarely at the controller.
    if (crt_changed && (score.cls == ProblemClass::kControllerOverhead ||
                        score.cls == ProblemClass::kControllerFailure)) {
      score.score *= 1.2;
    }
    // Adversarial tells. Timing probes leave the application layer
    // untouched: infrastructure signatures move with nothing appearing or
    // disappearing. Fan-in separates the distributed attacks from a lone
    // unauthorized intruder, and CRT vs DD separates a control-plane flood
    // from a data-plane incast.
    if (score.cls == ProblemClass::kFingerprinting) {
      score.score *=
          crt_changed && !anything_added && !anything_removed ? 1.3 : 0.3;
    }
    if (score.cls == ProblemClass::kVolumetricFlood) {
      if (fan_in && crt_changed) {
        score.score *= 1.3;
      } else if (!fan_in) {
        score.score *= 0.5;
      }
    }
    if (score.cls == ProblemClass::kIncast) {
      if (fan_in && dd_changed) {
        score.score *= 1.3;
      } else if (!fan_in) {
        score.score *= 0.5;
      }
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ProblemScore& a, const ProblemScore& b) {
                     return a.score > b.score;
                   });
  return ranked;
}

std::vector<ProblemScore> classify(const DependencyMatrix& matrix) {
  const std::set<SignatureKind> observed = matrix.changed_kinds();
  std::vector<ProblemScore> out;
  if (observed.empty()) return out;
  for (const auto& [cls, profile] : problem_profiles()) {
    std::size_t inter = 0;
    for (const SignatureKind k : observed) {
      if (profile.contains(k)) ++inter;
    }
    const std::size_t uni = profile.size() + observed.size() - inter;
    ProblemScore score;
    score.cls = cls;
    score.score = uni == 0 ? 0.0
                           : static_cast<double>(inter) /
                                 static_cast<double>(uni);
    if (score.score > 0.0) out.push_back(score);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ProblemScore& a, const ProblemScore& b) {
                     return a.score > b.score;
                   });
  return out;
}

std::vector<std::pair<std::string, int>> rank_components(
    const std::vector<Change>& unknown) {
  std::map<std::string, int> counts;
  for (const auto& change : unknown) {
    for (const auto& component : change.components) {
      // Count each endpoint and the component itself, so a host appearing
      // in many changed edges outranks any single edge.
      ++counts[component.label];
      for (const Ipv4 ip : component.ips) ++counts[ip.to_string()];
    }
  }
  std::vector<std::pair<std::string, int>> ranked(counts.begin(),
                                                  counts.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });
  return ranked;
}

std::string render_diagnosis_summary(const std::vector<Change>& unknown,
                                     std::size_t top_classes,
                                     std::size_t top_components) {
  if (unknown.empty()) return "no unknown changes: nothing to diagnose\n";
  const DependencyMatrix matrix = build_dependency_matrix(unknown);
  std::string out = matrix.render();
  const auto scores = classify(matrix, unknown);
  if (!scores.empty()) {
    out += "likely problem classes:\n";
    for (std::size_t i = 0; i < scores.size() && i < top_classes; ++i) {
      char line[96];
      std::snprintf(line, sizeof(line), "  %zu. %s (score %.2f)\n", i + 1,
                    to_string(scores[i].cls), scores[i].score);
      out += line;
    }
  }
  const auto components = rank_components(unknown);
  if (!components.empty()) {
    out += "most implicated components:\n";
    for (std::size_t i = 0; i < components.size() && i < top_components;
         ++i) {
      out += "  " + components[i].first + " (" +
             std::to_string(components[i].second) + " change(s))\n";
    }
  }
  return out;
}

}  // namespace flowdiff::core
