file(REMOVE_RECURSE
  "libflowdiff_core.a"
)
