// Flight recorder (src/obs/flight_recorder.*): ring wraparound, severity
// filtering, disabled-path no-ops, and rendering.
#include "obs/flight_recorder.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <string>

namespace flowdiff::obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().clear();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    FlightRecorder::global().clear();
  }
};

TEST_F(FlightRecorderTest, RecordsAndRetainsInOrder) {
  FlightRecorder recorder(8);
  recorder.record(Severity::kInfo, "compA", "first", {{"k", "1"}}, 1.5);
  recorder.record(Severity::kWarn, "compB", "second");
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].component, "compA");
  EXPECT_EQ(events[0].message, "first");
  EXPECT_DOUBLE_EQ(events[0].sim_t, 1.5);
  ASSERT_EQ(events[0].fields.size(), 1u);
  EXPECT_EQ(events[0].fields[0].first, "k");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].severity, Severity::kWarn);
  EXPECT_LT(events[1].sim_t, 0.0);  // No virtual time attached.
}

TEST_F(FlightRecorderTest, WraparoundKeepsNewestAndCountsDropped) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 10; ++i) {
    recorder.record(Severity::kInfo, "c", "event " + std::to_string(i));
  }
  EXPECT_EQ(recorder.total(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive, oldest first, with monotone sequence numbers.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].message, "event " + std::to_string(6 + i));
  }
}

TEST_F(FlightRecorderTest, DisabledRecorderDropsEverything) {
  FlightRecorder recorder(4);
  set_enabled(false);
  recorder.record(Severity::kError, "c", "never stored");
  set_enabled(true);
  EXPECT_EQ(recorder.total(), 0u);
  EXPECT_TRUE(recorder.events().empty());
}

TEST_F(FlightRecorderTest, SeverityFilterIsInclusiveThreshold) {
  FlightRecorder recorder(16);
  recorder.record(Severity::kDebug, "c", "d");
  recorder.record(Severity::kInfo, "c", "i");
  recorder.record(Severity::kWarn, "c", "w");
  recorder.record(Severity::kError, "c", "e");
  EXPECT_EQ(recorder.events(Severity::kDebug).size(), 4u);
  EXPECT_EQ(recorder.events(Severity::kInfo).size(), 3u);
  const auto warnings = recorder.events(Severity::kWarn);
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_EQ(warnings[0].message, "w");
  EXPECT_EQ(warnings[1].message, "e");
}

TEST_F(FlightRecorderTest, ClearResetsAndCanResize) {
  FlightRecorder recorder(2);
  recorder.record(Severity::kInfo, "c", "one");
  recorder.record(Severity::kInfo, "c", "two");
  recorder.record(Severity::kInfo, "c", "three");
  EXPECT_EQ(recorder.dropped(), 1u);
  recorder.clear(8);
  EXPECT_EQ(recorder.total(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  for (int i = 0; i < 5; ++i) {
    recorder.record(Severity::kInfo, "c", "post " + std::to_string(i));
  }
  EXPECT_EQ(recorder.events().size(), 5u);  // New capacity holds them all.
}

TEST_F(FlightRecorderTest, RenderShowsSeverityFieldsAndTail) {
  FlightRecorder recorder(16);
  recorder.record(Severity::kWarn, "queue", "depth watermark crossed",
                  {{"depth", "2048"}}, 12.25);
  recorder.record(Severity::kInfo, "monitor", "baseline adopted");
  const std::string all = recorder.render();
  EXPECT_NE(all.find("WARN"), std::string::npos);
  EXPECT_NE(all.find("queue: depth watermark crossed"), std::string::npos);
  EXPECT_NE(all.find("depth=2048"), std::string::npos);
  EXPECT_NE(all.find("t=12.250s"), std::string::npos);
  const std::string tail = recorder.render(1);
  EXPECT_EQ(tail.find("watermark"), std::string::npos);
  EXPECT_NE(tail.find("baseline adopted"), std::string::npos);
}

TEST_F(FlightRecorderTest, InstallAbnormalExitDumpIsIdempotent) {
  // Installing twice must not loop the terminate-handler chain; there is
  // nothing visible to assert beyond "does not crash".
  FlightRecorder::install_abnormal_exit_dump();
  FlightRecorder::install_abnormal_exit_dump();
  SUCCEED();
}

TEST_F(FlightRecorderTest, PrerenderedTailWritesNewestEventsInOrder) {
  // The fatal-signal path: lines pre-rendered at record() time, emitted
  // with write(2) only. A pipe stands in for stderr.
  FlightRecorder recorder(8);
  recorder.record(Severity::kInfo, "comp", "alpha event");
  recorder.record(Severity::kWarn, "comp", "bravo event", {{"k", "v"}}, 2.5);
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  recorder.write_prerendered_tail(fds[1]);
  close(fds[1]);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  const std::size_t alpha = out.find("alpha event");
  const std::size_t bravo = out.find("bravo event");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(bravo, std::string::npos);
  EXPECT_LT(alpha, bravo);  // Oldest first, like render().
  EXPECT_NE(out.find("WARN"), std::string::npos);
}

TEST_F(FlightRecorderTest, PrerenderedTailKeepsOnlyNewestSlotsAndTruncates) {
  FlightRecorder recorder(256);
  // Overflow the 64-slot panic ring; only the newest 64 lines survive.
  for (int i = 0; i < 100; ++i) {
    recorder.record(Severity::kInfo, "comp",
                    "event number " + std::to_string(i));
  }
  // A line longer than a panic slot must come out truncated, not torn.
  recorder.record(Severity::kError, "comp", std::string(500, 'z'));
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  recorder.write_prerendered_tail(fds[1]);
  close(fds[1]);
  std::string out;
  char buf[8192];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  EXPECT_EQ(out.find("event number 30"), std::string::npos);  // Rotated out.
  EXPECT_NE(out.find("event number 99"), std::string::npos);
  EXPECT_NE(out.find("zzzz"), std::string::npos);
  for (const std::string& line :
       {std::string("ERROR"), std::string("zzzz")}) {
    EXPECT_NE(out.find(line), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace flowdiff::obs
