// End-to-end FlowDiff: baseline window vs faulty window on the simulated
// lab testbed — the Table I experiments as tests, plus task validation.
#include <gtest/gtest.h>

#include "experiment/lab_experiment.h"
#include "workload/tasks.h"

namespace flowdiff::exp {
namespace {

using core::SignatureKind;

std::set<SignatureKind> unknown_kinds(const core::DiffReport& report) {
  std::set<SignatureKind> out;
  for (const auto& c : report.unknown) out.insert(c.kind);
  return out;
}

struct Diffed {
  core::DiffReport report;
  core::BehaviorModel baseline;
  core::BehaviorModel current;
};

Diffed run_with_fault(
    LabExperiment& lab,
    const std::function<std::unique_ptr<faults::FaultInjector>(
        LabExperiment&)>& make_fault,
    const std::vector<core::TaskAutomaton>& tasks = {}) {
  const core::FlowDiff flowdiff(lab.flowdiff_config());
  const auto baseline_log = lab.run_window();
  std::unique_ptr<faults::FaultInjector> fault;
  if (make_fault) fault = make_fault(lab);
  const auto faulty_log = lab.run_window(fault.get());
  Diffed out;
  out.baseline = flowdiff.model(baseline_log);
  out.current = flowdiff.model(faulty_log);
  out.report = flowdiff.diff(out.baseline, out.current, tasks);
  return out;
}

TEST(Integration, CleanRerunRaisesNoStructuralAlarms) {
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, nullptr);
  const auto kinds = unknown_kinds(result.report);
  EXPECT_FALSE(kinds.contains(SignatureKind::kCg));
  EXPECT_FALSE(kinds.contains(SignatureKind::kPt));
  EXPECT_FALSE(kinds.contains(SignatureKind::kCi));
  EXPECT_FALSE(kinds.contains(SignatureKind::kDd));
  EXPECT_FALSE(kinds.contains(SignatureKind::kIsl));
}

TEST(Integration, ServerLoggingShiftsDelayDistribution) {
  // Table I row 1: INFO logging on the app server -> DD.
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    return std::make_unique<faults::ServerSlowdownFault>(
        l.net(), l.lab().host("S4"), 60 * kMillisecond, "logging");
  });
  EXPECT_TRUE(unknown_kinds(result.report).contains(SignatureKind::kDd));
  // The slowed server should be among the top implicated components.
  bool s4_implicated = false;
  for (std::size_t i = 0;
       i < std::min<std::size_t>(5, result.report.component_ranking.size());
       ++i) {
    if (result.report.component_ranking[i].first == "10.0.1.4") {
      s4_implicated = true;
    }
  }
  EXPECT_TRUE(s4_implicated);
}

TEST(Integration, LinkLossChangesFlowStatsAndDelays) {
  // Table I row 2: emulated loss -> DD, FS.
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    // Loss on the app server S4's access link.
    auto& topo = l.net().topology();
    const auto s4 = l.lab().host("S4");
    std::vector<LinkId> links{topo.host(s4).links.front()};
    return std::make_unique<faults::LinkLossFault>(l.net(), links, 0.2);
  });
  const auto kinds = unknown_kinds(result.report);
  EXPECT_TRUE(kinds.contains(SignatureKind::kFs));
  EXPECT_TRUE(kinds.contains(SignatureKind::kDd));
}

TEST(Integration, HighCpuShiftsDelays) {
  // Table I row 3: CPU hog -> DD (host/application problem inference).
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    return std::make_unique<faults::ServerSlowdownFault>(
        l.net(), l.lab().host("S7"), 80 * kMillisecond, "high_cpu");
  });
  EXPECT_TRUE(unknown_kinds(result.report).contains(SignatureKind::kDd));
  ASSERT_FALSE(result.report.problems.empty());
  const auto top = result.report.problems[0].cls;
  EXPECT_TRUE(top == core::ProblemClass::kHostPerformance ||
              top == core::ProblemClass::kAppPerformance);
}

TEST(Integration, AppCrashRemovesEdges) {
  // Table I row 4: application crash -> CG, CI.
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    return std::make_unique<faults::AppCrashFault>(
        l.net(), l.lab().ip("S10"), 8009);
  });
  const auto kinds = unknown_kinds(result.report);
  EXPECT_TRUE(kinds.contains(SignatureKind::kCg));
  EXPECT_TRUE(kinds.contains(SignatureKind::kCi));
}

TEST(Integration, HostShutdownRemovesEdges) {
  // Table I row 5: host/VM shutdown -> CG, CI.
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    return std::make_unique<faults::HostShutdownFault>(l.net(),
                                                       l.lab().host("S20"));
  });
  const auto kinds = unknown_kinds(result.report);
  EXPECT_TRUE(kinds.contains(SignatureKind::kCg));
  EXPECT_TRUE(kinds.contains(SignatureKind::kCi));
}

TEST(Integration, FirewallBlockRemovesEdges) {
  // Table I row 6: firewall port block -> CG, CI.
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    return std::make_unique<faults::FirewallBlockFault>(
        l.net(), l.lab().ip("S14"), 3306);
  });
  const auto kinds = unknown_kinds(result.report);
  EXPECT_TRUE(kinds.contains(SignatureKind::kCg));
  EXPECT_TRUE(kinds.contains(SignatureKind::kCi));
}

TEST(Integration, BackgroundTrafficCongestsNetwork) {
  // Table I row 7: iperf -> ISL plus flow-level effects; network
  // bottleneck must rank at the top.
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    return std::make_unique<faults::BackgroundTrafficFault>(
        l.net(), l.lab().host("S1"), l.lab().host("S14"), 0.85e9);
  });
  const auto kinds = unknown_kinds(result.report);
  EXPECT_TRUE(kinds.contains(SignatureKind::kIsl));
  ASSERT_FALSE(result.report.problems.empty());
  const auto top = result.report.problems[0].cls;
  EXPECT_TRUE(top == core::ProblemClass::kNetworkBottleneck ||
              top == core::ProblemClass::kSwitchOverhead);
}

TEST(Integration, ControllerOverloadShowsInCrt) {
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    return std::make_unique<faults::ControllerOverloadFault>(l.controller(),
                                                             40.0);
  });
  EXPECT_TRUE(unknown_kinds(result.report).contains(SignatureKind::kCrt));
}

TEST(Integration, UnauthorizedAccessClassified) {
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    const SimTime begin = l.now() + 5 * kSecond;
    return std::make_unique<faults::UnauthorizedAccessFault>(
        l.net(), l.lab().host("S21"), l.lab().host("S14"), 3306, begin,
        begin + 15 * kSecond, 20);
  });
  const auto kinds = unknown_kinds(result.report);
  EXPECT_TRUE(kinds.contains(SignatureKind::kCg));
  ASSERT_FALSE(result.report.problems.empty());
  bool unauthorized_ranked = false;
  for (std::size_t i = 0;
       i < std::min<std::size_t>(3, result.report.problems.size()); ++i) {
    if (result.report.problems[i].cls ==
        core::ProblemClass::kUnauthorizedAccess) {
      unauthorized_ranked = true;
    }
  }
  EXPECT_TRUE(unauthorized_ranked);
}

TEST(Integration, VmMigrationExplainedByTaskSignature) {
  // The paper's validation step: a CG change caused by a learned operator
  // task is reported as known, not as a problem.
  LabExperiment lab(LabExperimentConfig{});
  const core::FlowDiff flowdiff(lab.flowdiff_config());

  // Learn the migration automaton from masked training runs.
  Rng rng(77);
  std::vector<of::FlowSequence> runs;
  for (int i = 0; i < 12; ++i) {
    runs.push_back(
        wl::expand_task(wl::vm_migration_profile(),
                        {lab.lab().ip("VM1"), lab.lab().ip("VM2")},
                        lab.lab().services, rng, 0)
            .flows);
  }
  const auto mined = flowdiff.learn_task("vm_migration", runs, true);

  const auto baseline_log = lab.run_window();
  // Second window: same workload plus a live migration of VM3 to VM4.
  const SimTime start = lab.now() + 5 * kSecond;
  const auto migration = wl::expand_task(
      wl::vm_migration_profile(),
      {lab.lab().ip("VM3"), lab.lab().ip("VM4")}, lab.lab().services, rng,
      start);
  wl::run_task_on_network(lab.net(), migration);
  const auto second_log = lab.run_window();

  const auto baseline = flowdiff.model(baseline_log);
  const auto current = flowdiff.model(second_log);
  const auto report =
      flowdiff.diff(baseline, current, {mined.automaton});

  // The migration was detected...
  bool detected = false;
  for (const auto& occ : report.detected_tasks) {
    if (occ.task == "vm_migration") detected = true;
  }
  EXPECT_TRUE(detected);
  // ...and every change it caused (new VM3/VM4 edges) is known, so no
  // CG changes remain unknown.
  EXPECT_FALSE(unknown_kinds(report).contains(SignatureKind::kCg));
  EXPECT_FALSE(report.known.empty());
  // Without the automaton, the same diff WOULD raise unknown CG changes.
  const auto unaided = flowdiff.diff(baseline, current, {});
  EXPECT_TRUE(unknown_kinds(unaided).contains(SignatureKind::kCg));
}

TEST(Integration, ReportRenders) {
  LabExperiment lab(LabExperimentConfig{});
  const auto result = run_with_fault(lab, [](LabExperiment& l) {
    return std::make_unique<faults::AppCrashFault>(
        l.net(), l.lab().ip("S10"), 8009);
  });
  const std::string text = result.report.render();
  EXPECT_NE(text.find("FlowDiff report"), std::string::npos);
  EXPECT_NE(text.find("UNKNOWN changes"), std::string::npos);
  EXPECT_NE(text.find("dependency matrix"), std::string::npos);
}

}  // namespace
}  // namespace flowdiff::exp
