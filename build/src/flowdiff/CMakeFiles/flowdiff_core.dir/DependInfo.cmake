
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowdiff/app_groups.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/app_groups.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/app_groups.cc.o.d"
  "/root/repo/src/flowdiff/app_signatures.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/app_signatures.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/app_signatures.cc.o.d"
  "/root/repo/src/flowdiff/diagnosis.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/diagnosis.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/diagnosis.cc.o.d"
  "/root/repo/src/flowdiff/diff.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/diff.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/diff.cc.o.d"
  "/root/repo/src/flowdiff/flow_token.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/flow_token.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/flow_token.cc.o.d"
  "/root/repo/src/flowdiff/flowdiff.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/flowdiff.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/flowdiff.cc.o.d"
  "/root/repo/src/flowdiff/infra_signatures.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/infra_signatures.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/infra_signatures.cc.o.d"
  "/root/repo/src/flowdiff/log_model.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/log_model.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/log_model.cc.o.d"
  "/root/repo/src/flowdiff/model.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/model.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/model.cc.o.d"
  "/root/repo/src/flowdiff/monitor.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/monitor.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/monitor.cc.o.d"
  "/root/repo/src/flowdiff/task_automaton.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/task_automaton.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/task_automaton.cc.o.d"
  "/root/repo/src/flowdiff/task_mining.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/task_mining.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/task_mining.cc.o.d"
  "/root/repo/src/flowdiff/validate.cc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/validate.cc.o" "gcc" "src/flowdiff/CMakeFiles/flowdiff_core.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/flowdiff_util.dir/DependInfo.cmake"
  "/root/repo/build/src/openflow/CMakeFiles/flowdiff_openflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
