# Empty compiler generated dependencies file for table1_problems.
# This may be replaced when dependencies are built.
