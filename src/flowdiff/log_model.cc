#include "flowdiff/log_model.h"

#include <algorithm>
#include <unordered_map>

namespace flowdiff::core {

of::FlowSequence ParsedLog::flow_starts() const {
  of::FlowSequence out;
  out.reserve(occurrences.size());
  for (const auto& occ : occurrences) {
    out.push_back(of::TimedFlow{occ.first_ts, occ.key});
  }
  return out;
}

ParsedLog parse_log(const of::ControlLog& log, SimDuration grouping_window) {
  ParsedLog parsed;
  parsed.begin = log.begin_time();
  parsed.end = log.end_time();

  // Open occurrence per 5-tuple: index into parsed.occurrences plus the time
  // of its latest activity, so a re-appearance of the same 5-tuple after the
  // grouping window opens a new occurrence.
  struct Open {
    std::size_t index;
    SimTime last_ts;
  };
  std::unordered_map<of::FlowKey, Open> open;

  for (const auto& event : log.events()) {
    if (const auto* pin = std::get_if<of::PacketIn>(&event.msg)) {
      auto it = open.find(pin->key);
      if (it == open.end() ||
          event.ts - it->second.last_ts > grouping_window) {
        FlowOccurrence occ;
        occ.key = pin->key;
        occ.first_ts = event.ts;
        parsed.occurrences.push_back(std::move(occ));
        open[pin->key] = Open{parsed.occurrences.size() - 1, event.ts};
        it = open.find(pin->key);
      }
      auto& occ = parsed.occurrences[it->second.index];
      occ.hops.push_back(SwitchHop{pin->sw, pin->in_port, PortId{},
                                   event.ts, -1});
      it->second.last_ts = event.ts;
    } else if (const auto* fm = std::get_if<of::FlowMod>(&event.msg)) {
      auto it = open.find(fm->key);
      if (it == open.end()) continue;
      auto& occ = parsed.occurrences[it->second.index];
      // Answer the switch's pending hop (latest unanswered from this sw).
      for (auto hop = occ.hops.rbegin(); hop != occ.hops.rend(); ++hop) {
        if (hop->sw == fm->sw && hop->flow_mod_ts < 0) {
          hop->flow_mod_ts = event.ts;
          hop->out_port = fm->out_port;
          parsed.crt_samples_ms.push_back(
              to_millis(event.ts - hop->packet_in_ts));
          break;
        }
      }
      it->second.last_ts = event.ts;
    } else if (const auto* fr = std::get_if<of::FlowRemoved>(&event.msg)) {
      parsed.removed.push_back(RemovedRecord{fr->sw, fr->key, event.ts,
                                             fr->duration, fr->byte_count,
                                             fr->packet_count});
    } else if (const auto* fs = std::get_if<of::FlowStatsReply>(&event.msg)) {
      parsed.stats.push_back(
          StatsSample{fs->sw, event.ts, fs->age, fs->byte_count});
    }
  }

  std::stable_sort(parsed.occurrences.begin(), parsed.occurrences.end(),
                   [](const FlowOccurrence& a, const FlowOccurrence& b) {
                     return a.first_ts < b.first_ts;
                   });
  return parsed;
}

}  // namespace flowdiff::core
