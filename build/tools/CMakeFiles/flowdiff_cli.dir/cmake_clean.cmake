file(REMOVE_RECURSE
  "CMakeFiles/flowdiff_cli.dir/flowdiff_cli.cc.o"
  "CMakeFiles/flowdiff_cli.dir/flowdiff_cli.cc.o.d"
  "flowdiff"
  "flowdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowdiff_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
