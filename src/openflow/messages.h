// Control-plane messages exchanged between switches and the controller.
//
// FlowDiff builds all of its behavioral models from a timestamped log of
// these messages captured at the controller (the paper's L1/L2 logs).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "openflow/flow_key.h"
#include "openflow/match.h"
#include "util/ids.h"
#include "util/time.h"

namespace flowdiff::of {

/// Switch -> controller: a packet missed every flow-table entry.
struct PacketIn {
  SwitchId sw;
  PortId in_port;
  FlowKey key;
  /// Simulator-wide id of the flow occurrence that raised this miss; lets
  /// the log analysis group the PacketIns of one flow across switches the
  /// same way a real analysis groups them by 5-tuple + time proximity.
  std::uint64_t flow_uid = 0;
};

/// Controller -> switch: install a flow entry.
struct FlowMod {
  SwitchId sw;
  FlowMatch match;
  PortId out_port;
  SimDuration idle_timeout = 0;
  SimDuration hard_timeout = 0;
  FlowKey key;              ///< Flow that triggered the install.
  std::uint64_t flow_uid = 0;
};

/// Controller -> switch: release the buffered packet.
struct PacketOut {
  SwitchId sw;
  PortId out_port;
  FlowKey key;
  std::uint64_t flow_uid = 0;
};

enum class RemovedReason : std::uint8_t { kIdleTimeout, kHardTimeout, kDelete };

/// Switch -> controller: a flow entry expired; carries the entry counters.
struct FlowRemoved {
  SwitchId sw;
  FlowMatch match;
  FlowKey key;  ///< Representative flow for microflow entries.
  RemovedReason reason = RemovedReason::kIdleTimeout;
  SimDuration duration = 0;     ///< Lifetime of the entry.
  std::uint64_t byte_count = 0;
  std::uint64_t packet_count = 0;
};

/// Switch -> controller keepalive; used for controller liveness modeling.
struct EchoReply {
  SwitchId sw;
};

/// Switch -> controller: one flow entry's counters, in answer to a stats
/// poll. The paper notes the controller "can also poll flow counters on
/// switches to learn utilization"; these records carry that signal.
struct FlowStatsReply {
  SwitchId sw;
  FlowMatch match;
  FlowKey key;
  SimDuration age = 0;          ///< Entry lifetime at poll time.
  std::uint64_t byte_count = 0;
  std::uint64_t packet_count = 0;
};

using ControlMessage = std::variant<PacketIn, FlowMod, PacketOut,
                                    FlowRemoved, EchoReply, FlowStatsReply>;

/// A control message with the controller-side timestamp at which it was
/// received (switch -> controller) or sent (controller -> switch).
struct ControlEvent {
  SimTime ts = 0;
  ControllerId controller;
  ControlMessage msg;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] const char* message_name(const ControlMessage& msg);

}  // namespace flowdiff::of
