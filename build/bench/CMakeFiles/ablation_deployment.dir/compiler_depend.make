# Empty compiler generated dependencies file for ablation_deployment.
# This may be replaced when dependencies are built.
