#include "controller/controller.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace flowdiff::ctrl {

namespace {

struct ControllerMetrics {
  obs::Counter& packet_in =
      obs::Registry::global().counter("ctrl.packet_in");
  obs::Counter& flow_mod = obs::Registry::global().counter("ctrl.flow_mod");
  obs::Counter& packet_out =
      obs::Registry::global().counter("ctrl.packet_out");
  obs::Counter& flow_removed =
      obs::Registry::global().counter("ctrl.flow_removed");
  obs::Counter& no_route = obs::Registry::global().counter("ctrl.no_route");
  obs::Counter& stats_replies =
      obs::Registry::global().counter("ctrl.stats_replies");
  obs::Counter& proactive_rules =
      obs::Registry::global().counter("ctrl.proactive_rules");
  /// Queueing + processing per PacketIn, in sim-time microseconds — the
  /// controller-side view of what FlowDiff measures as CRT.
  obs::LatencyHistogram& service_us =
      obs::Registry::global().histogram("ctrl.service_time_us", 50.0);
};

ControllerMetrics& metrics() {
  static ControllerMetrics m;
  return m;
}

}  // namespace

Controller::Controller(sim::Network& net, ControllerId id,
                       ControllerConfig config)
    : net_(net), id_(id), config_(config), rng_(config.seed) {}

void Controller::handle_packet_in(const of::PacketIn& msg) {
  const SimTime arrival = net_.now();
  log_.append(of::ControlEvent{arrival, id_, msg});

  // Serial service queue: the response time FlowDiff measures (CRT) is
  // queueing + processing.
  double proc = static_cast<double>(config_.base_proc) * overload_factor_;
  proc += std::max(0.0, rng_.normal(0.0, static_cast<double>(config_.proc_jitter)));
  const SimTime start = std::max(arrival, busy_until_);
  const SimTime done = start + static_cast<SimDuration>(proc);
  busy_until_ = done;
  metrics().packet_in.inc();
  metrics().service_us.observe(static_cast<double>(done - arrival));

  net_.events().schedule(done, [this, msg] { decide(msg); });
}

void Controller::decide(const of::PacketIn& msg) {
  const SimTime now = net_.now();
  // Dropped PacketIns are rare and always interesting: leave a structured
  // breadcrumb with the reason so a run report can explain missing flows.
  const auto note_drop = [&](const char* reason) {
    metrics().no_route.inc();
    if (obs::enabled()) {
      obs::FlightRecorder::global().record(
          obs::Severity::kWarn, "controller", "PacketIn dropped",
          {{"reason", reason},
           {"sw", std::to_string(msg.sw.value)},
           {"dst", msg.key.dst_ip.to_string()}},
          to_seconds(now));
    }
    net_.drop_buffered(msg.flow_uid, msg.sw);
  };
  const auto& topo = net_.topology();
  const auto dst = topo.host_by_ip(msg.key.dst_ip);
  if (!dst) {
    note_drop("unknown destination host");
    return;
  }
  // Deterministic routing (no per-flow ECMP): paths are stable across
  // measurement windows, so the inferred physical topology only changes
  // when the network actually does.
  const auto next = topo.next_hop(msg.sw.value, dst->value);
  if (!next) {
    note_drop("no route to destination");
    return;
  }
  const sim::Link* link = topo.link_between(msg.sw.value, *next);
  if (link == nullptr) {
    note_drop("missing link to next hop");
    return;
  }

  of::FlowMod mod;
  mod.sw = msg.sw;
  mod.match = config_.granularity == RuleGranularity::kExact
                  ? of::FlowMatch::exact(msg.key)
                  : of::FlowMatch::host_pair(msg.key.src_ip, msg.key.dst_ip);
  mod.out_port = link->port_on(msg.sw.value);
  mod.idle_timeout = config_.idle_timeout.value_or(net_.config().idle_timeout);
  mod.hard_timeout = config_.hard_timeout.value_or(net_.config().hard_timeout);
  mod.key = msg.key;
  mod.flow_uid = msg.flow_uid;

  log_.append(of::ControlEvent{now, id_, mod});
  log_.append(of::ControlEvent{
      now, id_, of::PacketOut{msg.sw, mod.out_port, msg.key, msg.flow_uid}});
  metrics().flow_mod.inc();
  metrics().packet_out.inc();
  net_.send_flow_mod(mod);
}

void Controller::handle_flow_removed(const of::FlowRemoved& msg) {
  metrics().flow_removed.inc();
  log_.append(of::ControlEvent{net_.now(), id_, msg});
}

void Controller::start_stats_polling(SimDuration interval, SimTime until) {
  if (interval <= 0 || net_.now() >= until) return;
  net_.events().schedule_in(interval, [this, interval, until] {
    for (const SwitchId sw : net_.topology().of_switches()) {
      for (auto& reply : net_.read_stats(sw)) {
        metrics().stats_replies.inc();
        // Replies arrive one control-latency later.
        log_.append(of::ControlEvent{
            net_.now() + net_.config().control_latency, id_,
            std::move(reply)});
      }
    }
    start_stats_polling(interval, until);
  });
}

void Controller::install_proactive_rules() {
  const auto& topo = net_.topology();
  const auto hosts = topo.hosts();
  for (const HostId src : hosts) {
    for (const HostId dst : hosts) {
      if (src == dst) continue;
      const auto path = topo.shortest_path(src.value, dst.value);
      for (std::size_t i = 1; i + 1 < path.size(); ++i) {
        if (topo.node(path[i]).kind != sim::NodeKind::kOfSwitch) continue;
        const sim::Link* link = topo.link_between(path[i], path[i + 1]);
        if (link == nullptr) continue;
        of::FlowEntry entry;
        entry.match = of::FlowMatch::host_pair(topo.host(src).ip,
                                               topo.host(dst).ip);
        entry.out_port = link->port_on(path[i]);
        entry.priority = 1;
        entry.idle_timeout = 0;  // Permanent.
        entry.hard_timeout = 0;
        metrics().proactive_rules.inc();
        net_.install_entry_now(SwitchId{path[i]}, entry);
      }
    }
  }
}

}  // namespace flowdiff::ctrl
