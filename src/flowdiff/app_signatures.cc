#include "flowdiff/app_signatures.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/trace.h"

namespace flowdiff::core {

ConnectivityGraph::Diff ConnectivityGraph::diff(
    const ConnectivityGraph& current) const {
  Diff d;
  d.added = graph.edges_only_in(current.graph);
  d.removed = current.graph.edges_only_in(graph);
  return d;
}

double ComponentInteractionSig::chi2_at_node(const NodeCi& expected,
                                             const NodeCi& observed) {
  std::set<HostEdge> edges;
  for (const auto& [e, _] : expected.edge_counts) edges.insert(e);
  for (const auto& [e, _] : observed.edge_counts) edges.insert(e);
  std::vector<double> exp_v;
  std::vector<double> obs_v;
  exp_v.reserve(edges.size());
  obs_v.reserve(edges.size());
  for (const auto& e : edges) {
    exp_v.push_back(expected.normalized(e));
    obs_v.push_back(observed.normalized(e));
  }
  return chi_squared(obs_v, exp_v);
}

double dd_shape_distance(const DelayDistributionSig::PairDd& a,
                         const DelayDistributionSig::PairDd& b) {
  const std::size_t bins = std::max(a.hist.bin_count(), b.hist.bin_count());
  const double a_in =
      static_cast<double>(std::max<std::uint64_t>(a.in_flows, 1));
  const double b_in =
      static_cast<double>(std::max<std::uint64_t>(b.in_flows, 1));
  double delta = 0.0;
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const double ra = static_cast<double>(a.hist.count_at(bin)) / a_in;
    const double rb = static_cast<double>(b.hist.count_at(bin)) / b_in;
    delta = std::max(delta, std::abs(ra - rb));
  }
  return delta;
}

GroupSignatures extract_group_signatures(const ParsedLog& log,
                                         const std::set<Ipv4>& members,
                                         const AppSignatureConfig& config) {
  GroupSignatures out;
  out.members = members;

  // Group-internal flow starts, in time order.
  of::FlowSequence starts;
  for (const auto& occ : log.occurrences) {
    if (members.contains(occ.key.src_ip) &&
        members.contains(occ.key.dst_ip)) {
      starts.push_back(of::TimedFlow{occ.first_ts, occ.key});
    }
  }

  // --- CG + CI + FS flow counts -----------------------------------------
  // One span per signature family; emplace/reset brackets the sections
  // without disturbing the shared locals they build up.
  std::optional<obs::Span> family_span;
  family_span.emplace("model/sig/CG+CI");
  std::map<HostEdge, std::uint64_t> edge_flows;
  for (const auto& tf : starts) {
    const HostEdge e{tf.key.src_ip, tf.key.dst_ip};
    ++edge_flows[e];
    auto& fs = out.fs.per_edge[e];
    if (fs.flow_count == 0) fs.first_ts = tf.ts;
    ++fs.flow_count;
  }
  for (const auto& [e, n] : edge_flows) {
    if (n < config.min_edge_flows) continue;
    out.cg.graph.add_edge(e.first, e.second);
  }
  for (const auto& [e, n] : edge_flows) {
    auto& src_ci = out.ci.per_node[e.first];
    src_ci.edge_counts[e] += n;
    src_ci.total += n;
    auto& dst_ci = out.ci.per_node[e.second];
    dst_ci.edge_counts[e] += n;
    dst_ci.total += n;
  }

  // --- FS byte/duration stats from FlowRemoved ---------------------------
  family_span.emplace("model/sig/FS");
  for (const auto& rec : log.removed) {
    if (!members.contains(rec.key.src_ip) ||
        !members.contains(rec.key.dst_ip)) {
      continue;
    }
    auto& fs = out.fs.per_edge[HostEdge{rec.key.src_ip, rec.key.dst_ip}];
    fs.bytes.add(static_cast<double>(rec.bytes));
    fs.duration_ms.add(to_millis(rec.duration));
  }

  // --- FS group-wide flow rate -------------------------------------------
  if (!starts.empty()) {
    const SimTime begin = log.begin;
    const SimTime end = std::max(log.end, begin + kSecond);
    const auto buckets =
        static_cast<std::size_t>((end - begin) / kSecond) + 1;
    std::vector<double> per_sec(buckets, 0.0);
    for (const auto& tf : starts) {
      const auto b = static_cast<std::size_t>((tf.ts - begin) / kSecond);
      if (b < buckets) per_sec[b] += 1.0;
    }
    for (double v : per_sec) out.fs.flows_per_sec.add(v);
  }

  // --- DD: delays between in-flows and subsequent out-flows ---------------
  family_span.emplace("model/sig/DD");
  // Index flow starts per edge for pairing.
  std::map<HostEdge, std::vector<SimTime>> starts_by_edge;
  for (const auto& tf : starts) {
    starts_by_edge[HostEdge{tf.key.src_ip, tf.key.dst_ip}].push_back(tf.ts);
  }
  for (const auto& [in_edge, in_times] : starts_by_edge) {
    if (in_times.size() < config.min_edge_flows) continue;
    const Ipv4 node = in_edge.second;
    for (const auto& [out_edge, out_times] : starts_by_edge) {
      if (out_edge.first != node) continue;
      if (out_edge.second == in_edge.first) continue;  // Skip pure replies.
      if (out_times.size() < config.min_edge_flows) continue;
      DelayDistributionSig::PairDd pair;
      pair.hist = Histogram{config.dd_bin_ms};
      pair.in_flows = in_times.size();
      pair.out_flows = out_times.size();
      // All (f_in, f_out) pairs with 0 <= delta <= window. Both vectors are
      // time-sorted, so a sliding lower bound keeps this near-linear.
      std::size_t lo = 0;
      for (const SimTime t_in : in_times) {
        while (lo < out_times.size() && out_times[lo] < t_in) ++lo;
        for (std::size_t j = lo; j < out_times.size(); ++j) {
          const SimDuration delta = out_times[j] - t_in;
          if (delta > config.dd_window) break;
          pair.hist.add(to_millis(delta));
          ++pair.samples;
        }
      }
      if (pair.samples < config.min_edge_flows) continue;
      pair.peak_ms = pair.hist.top_peak().center;
      double weighted = 0.0;
      for (std::size_t b = 0; b < pair.hist.bin_count(); ++b) {
        weighted += pair.hist.bin_center(b) *
                    static_cast<double>(pair.hist.count_at(b));
      }
      pair.mean_ms = weighted / static_cast<double>(pair.hist.total());
      out.dd.per_pair[EdgePair{in_edge.first, node, out_edge.second}] =
          std::move(pair);
    }
  }

  // --- PC: correlation of per-epoch counts on adjacent edges --------------
  family_span.emplace("model/sig/PC");
  if (!starts.empty() && log.end > log.begin) {
    const auto epochs = static_cast<std::size_t>(
                            (log.end - log.begin) / config.pc_epoch) +
                        1;
    std::map<HostEdge, std::vector<double>> series;
    std::vector<double> group_series(epochs, 0.0);
    for (const auto& tf : starts) {
      auto& s = series[HostEdge{tf.key.src_ip, tf.key.dst_ip}];
      if (s.empty()) s.assign(epochs, 0.0);
      const auto e =
          static_cast<std::size_t>((tf.ts - log.begin) / config.pc_epoch);
      if (e < epochs) {
        s[e] += 1.0;
        group_series[e] += 1.0;
      }
    }
    for (const auto& [in_edge, in_series] : series) {
      const Ipv4 node = in_edge.second;
      if (edge_flows[in_edge] < config.min_edge_flows) continue;
      for (const auto& [out_edge, out_series] : series) {
        if (out_edge.first != node) continue;
        if (out_edge.second == in_edge.first) continue;
        if (edge_flows[out_edge] < config.min_edge_flows) continue;
        double rho;
        if (config.pc_control_for_group) {
          // Control for the rest of the group's activity (exclude the two
          // edges themselves from the control series).
          std::vector<double> control(epochs, 0.0);
          for (std::size_t e = 0; e < epochs; ++e) {
            control[e] = group_series[e] - in_series[e] - out_series[e];
          }
          rho = partial_correlation(in_series, out_series, control);
        } else {
          rho = pearson(in_series, out_series);
        }
        out.pc.rho[EdgePair{in_edge.first, node, out_edge.second}] = rho;
      }
    }
  }

  return out;
}

}  // namespace flowdiff::core
