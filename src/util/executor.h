// A small fixed worker pool with a task-future API.
//
// The modeling hot path (per-group signature extraction, stability
// sub-models, infrastructure signatures) is embarrassingly parallel; this
// executor is the one concurrency primitive the pipeline uses for it.
// Three properties the callers rely on:
//
//   * `workers == 0` runs everything serially, inline, on the calling
//     thread — no threads are created, submit() returns an already-ready
//     future. Parallelism is therefore an opt-in runtime knob
//     (`FlowDiffConfig::parallelism`, CLI `--workers=N`), and the serial
//     mode is the reference semantics parallel runs must reproduce.
//   * parallel_for(n, fn) calls fn(i) exactly once for every i in [0, n)
//     and returns only when all calls finished. Callers obtain determinism
//     by writing into position-indexed slots; the executor promises
//     nothing about execution order.
//   * A parallel_for issued from inside a worker task degrades to the
//     serial inline path instead of re-submitting to the (possibly full)
//     queue, so nested parallelism cannot deadlock the pool.
//
// An optional Observer receives queue-depth and per-task timing callbacks;
// obs/executor_metrics.h adapts it onto the metrics registry (util cannot
// depend on obs).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace flowdiff {

class Executor {
 public:
  /// Instrumentation hook. Callbacks fire on whichever thread triggered
  /// the transition (submitters and workers), so implementations must be
  /// thread safe; they must not call back into the executor.
  struct Observer {
    virtual ~Observer() = default;
    /// Queue length just after a task was enqueued or dequeued.
    virtual void on_queue_depth(std::size_t depth) = 0;
    /// One task finished; `queue_ms` is time spent waiting in the queue,
    /// `run_ms` time spent executing (both 0 on the serial inline path).
    virtual void on_task_done(double queue_ms, double run_ms) = 0;
  };

  /// `workers <= 0` creates no threads (serial inline mode). The observer,
  /// when given, must outlive the executor.
  explicit Executor(int workers = 0, Observer* observer = nullptr);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] int workers() const { return workers_; }
  [[nodiscard]] bool serial() const { return workers_ == 0; }

  /// Enqueues one task (runs it inline in serial mode). The future
  /// rethrows any exception the task escaped with.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(0) ... fn(n-1), blocking until every call returned. Work is
  /// sharded into contiguous index ranges across the pool; serial mode
  /// (and calls from inside a worker task) run the loop inline. The first
  /// exception thrown by any fn(i) is rethrown here after all shards
  /// settle.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Tasks ever finished (parallel_for shards count as one task each).
  [[nodiscard]] std::uint64_t tasks_completed() const;
  /// High-water mark of the pending-task queue since construction.
  [[nodiscard]] std::size_t peak_queue_depth() const;

 private:
  void worker_loop();
  /// Bookkeeping run inside the task wrapper, before the future becomes
  /// ready — a caller that observed future.get() return sees the counters
  /// already updated.
  void finish_task(std::chrono::steady_clock::time_point enqueued,
                   std::chrono::steady_clock::time_point start);

  const int workers_;
  Observer* const observer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::uint64_t completed_ = 0;
  std::size_t peak_depth_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace flowdiff
