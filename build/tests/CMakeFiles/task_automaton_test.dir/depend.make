# Empty dependencies file for task_automaton_test.
# This may be replaced when dependencies are built.
