// Application-group discovery.
//
// An application group is a connected component of the host communication
// graph, with the data center's special-purpose nodes (DNS, NFS, ...)
// excluded: hosts that talk only through a shared service must not be
// merged into one group (paper SectionIII-B).
#pragma once

#include <set>
#include <vector>

#include "openflow/timed_flow.h"
#include "util/ipv4.h"

namespace flowdiff::core {

struct AppGroups {
  std::vector<std::set<Ipv4>> groups;  ///< Member hosts, per group.

  /// Index of the group containing `ip`; -1 for unknown or special nodes.
  [[nodiscard]] int group_of(Ipv4 ip) const;
};

AppGroups discover_groups(const of::FlowSequence& flow_starts,
                          const std::set<Ipv4>& special_nodes);

}  // namespace flowdiff::core
