file(REMOVE_RECURSE
  "CMakeFiles/diagnosis_test.dir/diagnosis_test.cc.o"
  "CMakeFiles/diagnosis_test.dir/diagnosis_test.cc.o.d"
  "diagnosis_test"
  "diagnosis_test.pdb"
  "diagnosis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnosis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
