file(REMOVE_RECURSE
  "CMakeFiles/infra_signatures_test.dir/infra_signatures_test.cc.o"
  "CMakeFiles/infra_signatures_test.dir/infra_signatures_test.cc.o.d"
  "infra_signatures_test"
  "infra_signatures_test.pdb"
  "infra_signatures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_signatures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
