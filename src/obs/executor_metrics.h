// Adapts util/Executor's observer hook onto the metrics registry.
//
// util cannot depend on obs (layering), so the executor exposes a plain
// virtual Observer; this adapter publishes the callbacks as registry
// instruments under a caller-chosen prefix:
//
//   <prefix>.queue_depth   gauge      pending tasks (peak = backlog HWM)
//   <prefix>.tasks         counter    tasks finished
//   <prefix>.queue_ms      histogram  time tasks waited before running
//   <prefix>.run_ms        histogram  time tasks spent executing
//
// queue_ms versus run_ms is the pool's utilization story: a busy pool with
// near-zero queue_ms is sized right, growing queue_ms means the modeling
// fan-out is starved for workers. Mutations go through the usual
// obs::enabled() gate, so an instrumented executor costs one branch per
// callback while observability is off.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "util/executor.h"

namespace flowdiff::obs {

class ExecutorMetrics final : public Executor::Observer {
 public:
  explicit ExecutorMetrics(const std::string& prefix);

  void on_queue_depth(std::size_t depth) override;
  void on_task_done(double queue_ms, double run_ms) override;

 private:
  Gauge& depth_;
  Counter& tasks_;
  LatencyHistogram& queue_ms_;
  LatencyHistogram& run_ms_;
};

}  // namespace flowdiff::obs
