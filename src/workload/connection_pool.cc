#include "workload/connection_pool.h"

namespace flowdiff::wl {

std::uint16_t ConnectionPool::allocate_port() {
  if (next_ephemeral_ >= 60000) next_ephemeral_ = 40000;
  return next_ephemeral_++;
}

of::FlowKey ConnectionPool::get(Ipv4 src, Ipv4 dst, std::uint16_t dst_port,
                                double reuse_prob, Rng& rng, of::Proto proto) {
  const auto key = std::make_tuple(src.raw(), dst.raw(), dst_port);
  auto it = last_port_.find(key);
  std::uint16_t src_port;
  if (it != last_port_.end() && rng.bernoulli(reuse_prob)) {
    src_port = it->second;
  } else {
    src_port = allocate_port();
    last_port_[key] = src_port;
  }
  return of::FlowKey{src, dst, src_port, dst_port, proto};
}

void ConnectionPool::invalidate(Ipv4 src, Ipv4 dst, std::uint16_t dst_port) {
  last_port_.erase(std::make_tuple(src.raw(), dst.raw(), dst_port));
}

}  // namespace flowdiff::wl
