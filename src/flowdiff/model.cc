#include "flowdiff/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <utility>

#include "flowdiff/flowdiff.h"
#include "obs/executor_metrics.h"
#include "obs/trace.h"

namespace flowdiff::core {

namespace {

/// Restricts a parsed log to [t0, t1) for per-segment signature extraction.
ParsedLog slice_parsed(const ParsedLog& log, SimTime t0, SimTime t1) {
  ParsedLog out;
  out.begin = t0;
  out.end = t1;
  for (const auto& occ : log.occurrences) {
    if (occ.first_ts >= t0 && occ.first_ts < t1) out.occurrences.push_back(occ);
  }
  for (const auto& rec : log.removed) {
    if (rec.ts >= t0 && rec.ts < t1) out.removed.push_back(rec);
  }
  return out;
}

/// Extracts the stability sub-model for segment `s` of `segments` — one
/// independent work item of the parallel build; the result lands in a
/// position-indexed slot, so extraction order never matters.
GroupSignatures extract_segment_signatures(const ParsedLog& parsed,
                                           const std::set<Ipv4>& members,
                                           const ModelConfig& config, int s,
                                           int segments) {
  const SimTime begin = parsed.begin;
  const SimTime span = std::max<SimTime>(parsed.end - parsed.begin, 1);
  const SimTime t0 = begin + span * s / segments;
  const SimTime t1 = begin + span * (s + 1) / segments;
  return extract_group_signatures(slice_parsed(parsed, t0, t1), members,
                                  config.app);
}

}  // namespace

/// Pure reduction: reads the full-window signatures in `group.sig` and the
/// position-indexed `per_segment` slots, writes only the unstable sets
/// (std::set — insertion order is irrelevant to the result).
void analyze_group_stability(const std::vector<GroupSignatures>& per_segment,
                             const ModelConfig& config, GroupModel& group) {
  const int segments = static_cast<int>(per_segment.size());

  // CI: any segment pair with a large chi-squared marks the node unstable.
  for (const auto& [node, _] : group.sig.ci.per_node) {
    bool unstable = false;
    for (int a = 0; a < segments && !unstable; ++a) {
      const auto ia = per_segment[a].ci.per_node.find(node);
      if (ia == per_segment[a].ci.per_node.end()) continue;
      for (int b = a + 1; b < segments; ++b) {
        const auto ib = per_segment[b].ci.per_node.find(node);
        if (ib == per_segment[b].ci.per_node.end()) continue;
        if (ComponentInteractionSig::chi2_at_node(ia->second, ib->second) >
            config.ci_stability_chi2) {
          unstable = true;
          break;
        }
      }
    }
    if (unstable) group.unstable_ci_nodes.insert(node);
  }

  // DD: both the peak and the histogram shape must hold across segments.
  // Shape wobble is the signature of reuse-hidden dependencies (the paper's
  // "incomplete information about dependent flows").
  for (const auto& [pair, window_dd] : group.sig.dd.per_pair) {
    // Reuse-hidden dependencies: when far fewer out-flows are visible than
    // in-flows, the shape of the delay histogram is dominated by *which*
    // out-flows happened to be visible — only the peak is trustworthy.
    if (static_cast<double>(window_dd.out_flows) <
        config.dd_visibility_ratio *
            static_cast<double>(window_dd.in_flows)) {
      group.shape_unstable_dd_pairs.insert(pair);
    }
    double lo = 0.0;
    double hi = 0.0;
    int present = 0;
    std::vector<const DelayDistributionSig::PairDd*> seen;
    for (const auto& seg : per_segment) {
      const auto it = seg.dd.per_pair.find(pair);
      if (it == seg.dd.per_pair.end()) continue;
      seen.push_back(&it->second);
      const double peak = it->second.peak_ms;
      if (present == 0) {
        lo = hi = peak;
      } else {
        lo = std::min(lo, peak);
        hi = std::max(hi, peak);
      }
      ++present;
    }
    if (present >= 2 && hi - lo > config.dd_stability_ms) {
      group.unstable_dd_pairs.insert(pair);
      continue;
    }
    for (std::size_t a = 0; a < seen.size(); ++a) {
      for (std::size_t b = a + 1; b < seen.size(); ++b) {
        if (dd_shape_distance(*seen[a], *seen[b]) >
            config.dd_shape_stability) {
          group.shape_unstable_dd_pairs.insert(pair);
          a = seen.size();
          break;
        }
      }
    }
  }

  // PC: high variance across segments marks the pair unstable.
  for (const auto& [pair, _] : group.sig.pc.rho) {
    RunningStats stats;
    for (const auto& seg : per_segment) {
      const auto it = seg.pc.rho.find(pair);
      if (it != seg.pc.rho.end()) stats.add(it->second);
    }
    if (stats.count() >= 2 && stats.stddev() > config.pc_stability_sd) {
      group.unstable_pc_pairs.insert(pair);
    }
  }
}

Modeler::Modeler(ModelConfig config, int workers)
    : config_(std::move(config)),
      observer_(std::make_shared<obs::ExecutorMetrics>("model.exec")),
      executor_(std::make_shared<Executor>(
          workers, static_cast<Executor::Observer*>(observer_.get()))) {}

Modeler::Modeler(ModelConfig config, std::shared_ptr<Executor> executor)
    : config_(std::move(config)), executor_(std::move(executor)) {
  if (!executor_) executor_ = std::make_shared<Executor>(0);
}

BehaviorModel Modeler::build(const of::ControlLog& log) const {
  obs::Span span("model");
  static obs::LatencyHistogram& build_ms =
      obs::Registry::global().histogram("model.build_ms", 5.0);
  const obs::ScopedTimer timer(build_ms);
  const ModelConfig& config = config_;

  BehaviorModel model;
  const ParsedLog parsed = [&log] {
    const obs::Span parse_span("model/parse");
    return parse_log(log);
  }();
  model.begin = parsed.begin;
  model.end = parsed.end;
  model.flow_starts = parsed.flow_starts();

  static obs::Counter& builds = obs::Registry::global().counter("model.builds");
  static obs::Counter& events =
      obs::Registry::global().counter("model.events_consumed");
  builds.inc();
  events.inc(log.size());

  const AppGroups groups = [&] {
    const obs::Span groups_span("model/groups");
    return discover_groups(model.flow_starts, config.special_nodes);
  }();

  // Partition the log per group up front so modeling stays linear in the
  // log size no matter how many applications run (the paper's sub-linear
  // processing-time claim depends on this). The scan is sharded across the
  // pool: each shard classifies a contiguous slice into per-group buckets,
  // and the buckets are concatenated in shard order afterwards, so the
  // partition is element-for-element what the single pass produced.
  std::map<Ipv4, int> index_of;
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    for (const Ipv4 ip : groups.groups[g]) {
      index_of.emplace(ip, static_cast<int>(g));
    }
  }
  const std::size_t partition_group_count = groups.groups.size();
  std::vector<ParsedLog> per_group(partition_group_count);
  for (auto& pg : per_group) {
    pg.begin = parsed.begin;
    pg.end = parsed.end;
  }
  {
    const obs::Span partition_span("model/partition");
    struct PartitionShard {
      std::vector<std::vector<FlowOccurrence>> occurrences;
      std::vector<std::vector<RemovedRecord>> removed;
    };
    const std::size_t shard_count =
        executor_->serial()
            ? 1
            : static_cast<std::size_t>(executor_->workers()) * 2;
    std::vector<PartitionShard> shards(shard_count);
    executor_->parallel_for(shard_count, [&](std::size_t s) {
      PartitionShard& shard = shards[s];
      shard.occurrences.resize(partition_group_count);
      shard.removed.resize(partition_group_count);
      const auto classify = [&index_of](const of::FlowKey& key) {
        const auto it = index_of.find(key.src_ip);
        if (it == index_of.end()) return -1;
        if (!index_of.contains(key.dst_ip)) return -1;
        return it->second;
      };
      const std::size_t ob = parsed.occurrences.size() * s / shard_count;
      const std::size_t oe =
          parsed.occurrences.size() * (s + 1) / shard_count;
      for (std::size_t i = ob; i < oe; ++i) {
        const int g = classify(parsed.occurrences[i].key);
        if (g >= 0) {
          shard.occurrences[static_cast<std::size_t>(g)].push_back(
              parsed.occurrences[i]);
        }
      }
      const std::size_t rb = parsed.removed.size() * s / shard_count;
      const std::size_t re = parsed.removed.size() * (s + 1) / shard_count;
      for (std::size_t i = rb; i < re; ++i) {
        const int g = classify(parsed.removed[i].key);
        if (g >= 0) {
          shard.removed[static_cast<std::size_t>(g)].push_back(
              parsed.removed[i]);
        }
      }
    });
    for (std::size_t g = 0; g < partition_group_count; ++g) {
      for (const PartitionShard& shard : shards) {
        per_group[g].occurrences.insert(per_group[g].occurrences.end(),
                                        shard.occurrences[g].begin(),
                                        shard.occurrences[g].end());
        per_group[g].removed.insert(per_group[g].removed.end(),
                                    shard.removed[g].begin(),
                                    shard.removed[g].end());
      }
    }
  }

  // Infrastructure signatures only read `parsed`; they build on a parallel
  // branch alongside the application groups.
  std::future<void> infra = executor_->submit([&model, &parsed] {
    const obs::Span infra_span("model/infra");
    model.infra = extract_infra_signatures(parsed);
  });

  // Fan-out: the unit of work is one (group, sub-model) pair — unit 0 of
  // each group is the full-window signature extraction, units 1..segments
  // the stability sub-models. Flattening avoids nested waits on the pool,
  // and every unit writes only its own position-indexed slot, which is
  // what makes the parallel build bit-identical to the serial one.
  const std::size_t group_count = groups.groups.size();
  const int segments = std::max(2, config.stability_segments);
  const auto units_per_group = static_cast<std::size_t>(segments) + 1;
  model.groups.resize(group_count);
  std::vector<std::vector<GroupSignatures>> per_segment(group_count);
  for (auto& segs : per_segment) {
    segs.resize(static_cast<std::size_t>(segments));
  }
  {
    const obs::Span sig_span("model/signatures");
    executor_->parallel_for(
        group_count * units_per_group, [&](std::size_t unit) {
          const std::size_t g = unit / units_per_group;
          const auto k = static_cast<int>(unit % units_per_group);
          if (k == 0) {
            model.groups[g].sig = extract_group_signatures(
                per_group[g], groups.groups[g], config.app);
          } else {
            per_segment[g][static_cast<std::size_t>(k - 1)] =
                extract_segment_signatures(per_group[g], groups.groups[g],
                                           config, k - 1, segments);
          }
        });
    const obs::Span stability_span("model/stability");
    executor_->parallel_for(group_count, [&](std::size_t g) {
      analyze_group_stability(per_segment[g], config, model.groups[g]);
    });
  }

  infra.get();
  return model;
}

int match_group(const BehaviorModel& model, const std::set<Ipv4>& members) {
  int best = -1;
  std::size_t best_overlap = 0;
  for (std::size_t i = 0; i < model.groups.size(); ++i) {
    std::size_t overlap = 0;
    for (const Ipv4 ip : model.groups[i].sig.members) {
      if (members.contains(ip)) ++overlap;
    }
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::string describe_model(const BehaviorModel& model) {
  std::string out;
  out.reserve(1 << 14);
  const auto num = [&out](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    out += buf;
  };
  const auto u64 = [&out](std::uint64_t v) { out += std::to_string(v); };
  const auto ts = [&out](SimTime t) { out += std::to_string(t); };
  const auto ip = [&out](Ipv4 a) { out += a.to_string(); };
  const auto key = [&](const of::FlowKey& k) {
    ip(k.src_ip);
    out += '>';
    ip(k.dst_ip);
    out += ':';
    out += std::to_string(k.src_port);
    out += '-';
    out += std::to_string(k.dst_port);
    out += '/';
    out += std::to_string(static_cast<int>(k.proto));
  };
  const auto edge = [&](const HostEdge& e) {
    ip(e.first);
    out += '>';
    ip(e.second);
  };
  const auto triple = [&](const EdgePair& t) {
    ip(std::get<0>(t));
    out += '>';
    ip(std::get<1>(t));
    out += '>';
    ip(std::get<2>(t));
  };
  const auto stats = [&](const RunningStats& s) {
    out += "n=";
    u64(s.count());
    out += " mean=";
    num(s.mean());
    out += " var=";
    num(s.variance());
    out += " sum=";
    num(s.sum());
    out += " min=";
    num(s.min());
    out += " max=";
    num(s.max());
  };
  const auto hist = [&](const Histogram& h) {
    out += "bw=";
    num(h.bin_width());
    out += " o=";
    num(h.origin());
    out += " total=";
    u64(h.total());
    out += " [";
    for (const std::uint64_t c : h.counts()) {
      u64(c);
      out += ',';
    }
    out += ']';
  };

  out += "begin=";
  ts(model.begin);
  out += " end=";
  ts(model.end);
  out += "\nflow_starts ";
  u64(model.flow_starts.size());
  out += '\n';
  for (const auto& tf : model.flow_starts) {
    ts(tf.ts);
    out += ' ';
    key(tf.key);
    out += '\n';
  }
  for (std::size_t g = 0; g < model.groups.size(); ++g) {
    const GroupModel& gm = model.groups[g];
    out += "group ";
    u64(g);
    out += " members";
    for (const Ipv4 m : gm.sig.members) {
      out += ' ';
      ip(m);
    }
    out += "\ncg";
    for (const auto& [from, to] : gm.sig.cg.graph.edges()) {
      out += ' ';
      edge(HostEdge{from, to});
    }
    out += "\nfs fps ";
    stats(gm.sig.fs.flows_per_sec);
    out += '\n';
    for (const auto& [e, fs] : gm.sig.fs.per_edge) {
      out += "fs ";
      edge(e);
      out += " flows=";
      u64(fs.flow_count);
      out += " first=";
      ts(fs.first_ts);
      out += " bytes{";
      stats(fs.bytes);
      out += "} dur{";
      stats(fs.duration_ms);
      out += "}\n";
    }
    for (const auto& [node, ci] : gm.sig.ci.per_node) {
      out += "ci ";
      ip(node);
      out += " total=";
      u64(ci.total);
      for (const auto& [e, n] : ci.edge_counts) {
        out += ' ';
        edge(e);
        out += '=';
        u64(n);
      }
      out += '\n';
    }
    for (const auto& [t, dd] : gm.sig.dd.per_pair) {
      out += "dd ";
      triple(t);
      out += " peak=";
      num(dd.peak_ms);
      out += " mean=";
      num(dd.mean_ms);
      out += " samples=";
      u64(dd.samples);
      out += " in=";
      u64(dd.in_flows);
      out += " out=";
      u64(dd.out_flows);
      out += " hist{";
      hist(dd.hist);
      out += "}\n";
    }
    for (const auto& [t, rho] : gm.sig.pc.rho) {
      out += "pc ";
      triple(t);
      out += " rho=";
      num(rho);
      out += '\n';
    }
    out += "unstable_ci";
    for (const Ipv4 n : gm.unstable_ci_nodes) {
      out += ' ';
      ip(n);
    }
    out += "\nunstable_dd";
    for (const auto& t : gm.unstable_dd_pairs) {
      out += ' ';
      triple(t);
    }
    out += "\nshape_unstable_dd";
    for (const auto& t : gm.shape_unstable_dd_pairs) {
      out += ' ';
      triple(t);
    }
    out += "\nunstable_pc";
    for (const auto& t : gm.unstable_pc_pairs) {
      out += ' ';
      triple(t);
    }
    out += '\n';
  }
  out += "infra pt";
  for (const auto& [from, to] : model.infra.pt.graph.edges()) {
    out += ' ';
    out += from;
    out += '>';
    out += to;
  }
  out += "\npt nodes";
  for (const auto& n : model.infra.pt.graph.nodes()) {
    out += ' ';
    out += n;
  }
  out += '\n';
  for (const auto& [pair, s] : model.infra.isl.latency_ms) {
    out += "isl ";
    out += std::to_string(pair.first);
    out += '>';
    out += std::to_string(pair.second);
    out += ' ';
    stats(s);
    out += '\n';
  }
  out += "crt ";
  stats(model.infra.crt.response_ms);
  out += '\n';
  for (const auto& [sw, s] : model.infra.load.mbps) {
    out += "load ";
    out += std::to_string(sw);
    out += ' ';
    stats(s);
    out += '\n';
  }
  return out;
}

}  // namespace flowdiff::core
