# Empty compiler generated dependencies file for infra_signatures_test.
# This may be replaced when dependencies are built.
