#include "obs/watchdog.h"

#include <cstdio>

#include "obs/flight_recorder.h"

namespace flowdiff::obs {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::vector<WatchdogRule> default_pipeline_rules() {
  return {
      {"sim.queue.depth", 4.0, 64.0},
      {"ctrl.service_time_us.p99", 3.0, 500.0},
      {"monitor.window_ms.p99", 3.0, 5.0},
  };
}

Watchdog::Watchdog(WatchdogConfig config) : config_(std::move(config)) {
  if (config_.rules.empty()) config_.rules = default_pipeline_rules();
}

std::size_t Watchdog::check(const Sampler& sampler) {
  std::size_t fired = 0;
  for (const WatchdogRule& rule : config_.rules) {
    const auto series = sampler.find(rule.series);
    if (!series || series->empty()) continue;
    const SeriesPoint last = series->last();
    const auto it = state_.find(rule.series);
    if (it != state_.end() && it->second.seen &&
        it->second.last_t >= last.t_end) {
      continue;  // No new sample since the previous check.
    }
    if (observe(rule.series, last.t_end, last.mean)) ++fired;
  }
  return fired;
}

bool Watchdog::observe(std::string_view series, double t, double value) {
  const WatchdogRule* rule = nullptr;
  for (const WatchdogRule& candidate : config_.rules) {
    if (candidate.series == series) {
      rule = &candidate;
      break;
    }
  }
  if (rule == nullptr) return false;

  State& state = state_[std::string(series)];
  bool fired = false;
  // Judge against the history *before* folding the sample in, so a spike
  // cannot mask itself.
  if (state.samples >= config_.warmup && value >= rule->min_value &&
      value > rule->factor * state.ewma) {
    fired = true;
    alerts_.fetch_add(1, std::memory_order_relaxed);
    static Counter& alert_counter =
        Registry::global().counter("obs.watchdog.alerts");
    alert_counter.inc();
    FlightRecorder::global().record(
        Severity::kWarn, "watchdog",
        "pipeline series degraded: " + std::string(series),
        {{"value", fmt(value)},
         {"ewma", fmt(state.ewma)},
         {"factor", fmt(rule->factor)}},
        t);
  }
  state.ewma = state.seen
                   ? config_.alpha * value + (1.0 - config_.alpha) * state.ewma
                   : value;
  state.seen = true;
  state.last_t = t;
  ++state.samples;
  return fired;
}

}  // namespace flowdiff::obs
