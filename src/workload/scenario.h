// Experimental scenario builders.
//
// * Lab data center (paper SectionV): 25 servers S1..S25 plus 5 VMs, seven
//   OpenFlow switches (two "hardware", five "software") and two legacy
//   switches, with service hosts (NFS, DNS, DHCP, NTP, ...) behind a legacy
//   switch.
// * Table II application deployments (cases 1-5) on that testbed.
// * The 320-server tree used by the scalability study: 16 racks of 20
//   servers, four ToRs per aggregation pair, eight aggregation switches,
//   two cores.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "simnet/topology.h"
#include "workload/app.h"
#include "workload/services.h"

namespace flowdiff::wl {

struct LabScenario {
  sim::Topology topology;
  std::map<std::string, HostId> hosts;  ///< "S1".."S25", "VM1".."VM5", services.
  ServiceCatalog services;
  std::vector<SwitchId> edge_switches;      ///< Software OpenFlow switches.
  std::vector<SwitchId> agg_switches;       ///< Hardware OpenFlow switches.
  std::vector<SwitchId> legacy_switches;

  [[nodiscard]] HostId host(const std::string& name) const {
    return hosts.at(name);
  }
  [[nodiscard]] Ipv4 ip(const std::string& name) const {
    return topology.host(hosts.at(name)).ip;
  }
};

LabScenario build_lab_scenario();

/// Knobs for the case-5 custom application (paper Fig. 10/11): Poisson
/// client rates P(x, y) in requests/minute and connection-reuse percentages
/// R(m, n) at the shared application server S3.
struct Case5Knobs {
  double rate_x = 500.0;
  double rate_y = 500.0;
  double reuse_m = 0.0;  ///< Fraction [0,1] for requests arriving via S1.
  double reuse_n = 0.0;  ///< Fraction [0,1] for requests arriving via S2.
  /// Ground-truth processing delay at S3 (the paper's 60 ms figure; the
  /// measured DD peak is transfer + processing).
  SimDuration s3_proc = 55 * kMillisecond;
};

/// Application groups for a Table II case (1-5). Case 5 takes its knobs.
std::vector<AppSpec> table2_apps(int case_no, const LabScenario& lab,
                                 const Case5Knobs& knobs = {});

/// Human-readable deployment description per Table II (for the bench).
std::vector<std::string> table2_description(int case_no);

struct TreeScenario {
  sim::Topology topology;
  std::vector<HostId> hosts;  ///< 320 servers.
  std::vector<SwitchId> tor_switches;
  std::vector<SwitchId> agg_switches;
  std::vector<SwitchId> core_switches;
};

TreeScenario build_tree_320();

/// A k-ary fat-tree (Al-Fares et al.): k pods, each with k/2 edge and k/2
/// aggregation switches, (k/2)^2 core switches, and (k/2)^2 hosts per pod
/// — k^3/4 hosts total. k must be even and >= 2. The canonical
/// full-bisection data-center fabric, as a second substrate for the
/// scalability study.
TreeScenario build_fat_tree(int k);

/// Randomly places a three-tier application on tree hosts (2 web / 3 app /
/// 2 db by default) and returns its spec. Every VM in one tier talks to
/// every VM in the next (all-pairs), as in the scalability study. When
/// `used` is given, hosts are drawn without replacement across calls —
/// each application gets its own VMs, as in the paper's placement.
AppSpec random_three_tier(const TreeScenario& tree, Rng& rng, int index,
                          std::set<std::size_t>* used = nullptr);

}  // namespace flowdiff::wl
