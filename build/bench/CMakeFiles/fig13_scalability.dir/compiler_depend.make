# Empty compiler generated dependencies file for fig13_scalability.
# This may be replaced when dependencies are built.
