#include "flowdiff/incremental_model.h"

#include <algorithm>
#include <future>
#include <set>
#include <utility>
#include <vector>

#include "flowdiff/app_groups.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace flowdiff::core {

namespace {

/// Stored DD pairs across all triples before the window falls back to the
/// from-scratch oracle — bounds feed-time memory on adversarial streams
/// (a stored pair is 16 bytes, so the cap is ~16 MB of pairing state).
constexpr std::uint64_t kMaxDdSamples = 1'000'000;

/// Member edges / triples of one application group, in sorted (map) order —
/// the same order the from-scratch extractor visits them in.
struct GroupWork {
  std::vector<const std::pair<const HostEdge, IncrementalWindowState::EdgeAgg>*>
      edges;
  std::vector<
      const std::pair<const EdgePair, IncrementalWindowState::TripleAgg>*>
      triples;
  std::uint64_t start_total = 0;
};

std::uint64_t count_in_range(const std::vector<SimTime>& starts, SimTime t0,
                             SimTime t1) {
  const auto lo = std::lower_bound(starts.begin(), starts.end(), t0);
  const auto hi = std::lower_bound(lo, starts.end(), t1);
  return static_cast<std::uint64_t>(hi - lo);
}

/// Histogram-weighted mean, exactly as the from-scratch extractor computes
/// it (ascending-bin accumulation off bin midpoints).
double hist_mean(const Histogram& hist) {
  double weighted = 0.0;
  for (std::size_t bin = 0; bin < hist.bin_count(); ++bin) {
    weighted += hist.bin_center(bin) * static_cast<double>(hist.count_at(bin));
  }
  return weighted / static_cast<double>(hist.total());
}

/// Window-wide signatures plus the per-segment stability sub-models for one
/// group, assembled from the delta-maintained aggregates. Writes only its
/// own position-indexed GroupModel slot, so the parallel fan-out stays
/// bit-identical to serial.
void assemble_group(const IncrementalWindowState& st, const GroupWork& work,
                    const std::set<Ipv4>& members, SimTime begin, SimTime end,
                    int segments, const ModelConfig& config, GroupModel& out) {
  const AppSignatureConfig& app = config.app;
  GroupSignatures& sig = out.sig;
  sig.members = members;

  // --- CG + CI + FS per-edge, straight off the aggregates -----------------
  for (const auto* e : work.edges) {
    const HostEdge& edge = e->first;
    const auto& agg = e->second;
    const auto n = static_cast<std::uint64_t>(agg.starts.size());
    if (n > 0) {
      if (n >= app.min_edge_flows) {
        sig.cg.graph.add_edge(edge.first, edge.second);
      }
      auto& src_ci = sig.ci.per_node[edge.first];
      src_ci.edge_counts[edge] += n;
      src_ci.total += n;
      auto& dst_ci = sig.ci.per_node[edge.second];
      dst_ci.edge_counts[edge] += n;
      dst_ci.total += n;
    }
    if (n > 0 || agg.removed > 0) {
      auto& fs = sig.fs.per_edge[edge];
      fs.flow_count = n;
      fs.first_ts = n > 0 ? agg.starts.front() : 0;
      fs.bytes = agg.bytes;
      fs.duration_ms = agg.duration_ms;
    }
  }

  // --- FS group-wide flow rate --------------------------------------------
  if (work.start_total > 0) {
    const SimTime rate_end = std::max(end, begin + kSecond);
    const auto buckets =
        static_cast<std::size_t>((rate_end - begin) / kSecond) + 1;
    std::vector<double> per_sec(buckets, 0.0);
    for (const auto* e : work.edges) {
      for (const SimTime ts : e->second.starts) {
        const auto b = static_cast<std::size_t>((ts - begin) / kSecond);
        if (b < buckets) per_sec[b] += 1.0;
      }
    }
    for (const double v : per_sec) sig.fs.flows_per_sec.add(v);
  }

  // --- DD window-wide: gate the streamed triples --------------------------
  for (const auto* t : work.triples) {
    const auto& [a, b, c] = t->first;
    const auto& agg = t->second;
    const auto in_n = static_cast<std::uint64_t>(
        st.edges.find(HostEdge{a, b})->second.starts.size());
    const auto out_n = static_cast<std::uint64_t>(
        st.edges.find(HostEdge{b, c})->second.starts.size());
    if (in_n < app.min_edge_flows || out_n < app.min_edge_flows) continue;
    if (agg.pairs.size() < app.min_edge_flows) continue;
    DelayDistributionSig::PairDd pair;
    pair.hist = agg.hist;
    pair.in_flows = in_n;
    pair.out_flows = out_n;
    pair.samples = static_cast<std::uint64_t>(agg.pairs.size());
    pair.peak_ms = pair.hist.top_peak().center;
    pair.mean_ms = hist_mean(pair.hist);
    sig.dd.per_pair[t->first] = std::move(pair);
  }

  // --- PC window-wide ------------------------------------------------------
  if (work.start_total > 0 && end > begin) {
    const auto epochs =
        static_cast<std::size_t>((end - begin) / app.pc_epoch) + 1;
    struct EdgeSeries {
      const HostEdge* edge;
      std::uint64_t n;
      std::vector<double> series;
    };
    std::vector<EdgeSeries> series;
    series.reserve(work.edges.size());
    std::vector<double> group_series;
    if (app.pc_control_for_group) group_series.assign(epochs, 0.0);
    for (const auto* e : work.edges) {
      if (e->second.starts.empty()) continue;
      EdgeSeries s{&e->first,
                   static_cast<std::uint64_t>(e->second.starts.size()),
                   std::vector<double>(epochs, 0.0)};
      for (const SimTime ts : e->second.starts) {
        const auto ep = static_cast<std::size_t>((ts - begin) / app.pc_epoch);
        if (ep < epochs) {
          s.series[ep] += 1.0;
          if (app.pc_control_for_group) group_series[ep] += 1.0;
        }
      }
      series.push_back(std::move(s));
    }
    for (const auto& in : series) {
      if (in.n < app.min_edge_flows) continue;
      const Ipv4 node = in.edge->second;
      for (const auto& out_s : series) {
        if (out_s.edge->first != node) continue;
        if (out_s.edge->second == in.edge->first) continue;
        if (out_s.n < app.min_edge_flows) continue;
        double rho;
        if (app.pc_control_for_group) {
          std::vector<double> control(epochs, 0.0);
          for (std::size_t ep = 0; ep < epochs; ++ep) {
            control[ep] = group_series[ep] - in.series[ep] - out_s.series[ep];
          }
          rho = partial_correlation(in.series, out_s.series, control);
        } else {
          rho = pearson(in.series, out_s.series);
        }
        sig.pc.rho[EdgePair{in.edge->first, node, out_s.edge->second}] = rho;
      }
    }
  }

  // --- Per-segment stability sub-models ------------------------------------
  // The from-scratch build re-extracts each segment from a sliced log; here
  // every segment is reconstructed from the same aggregates via binary
  // search on the per-edge start times and a re-bucketing pass over the
  // stored DD pairs. Stability only reads CI/DD/PC of the segments.
  const auto seg_count = static_cast<std::size_t>(segments);
  const SimTime span_us = std::max<SimTime>(end - begin, 1);
  std::vector<SimTime> bound(seg_count + 1);
  for (std::size_t k = 0; k <= seg_count; ++k) {
    bound[k] = begin + span_us * static_cast<SimTime>(k) / segments;
  }
  std::vector<GroupSignatures> per_segment(seg_count);
  for (std::size_t s = 0; s < seg_count; ++s) {
    const SimTime t0 = bound[s];
    const SimTime t1 = bound[s + 1];
    GroupSignatures& seg = per_segment[s];

    std::uint64_t seg_total = 0;
    for (const auto* e : work.edges) {
      const auto n = count_in_range(e->second.starts, t0, t1);
      seg_total += n;
      if (n == 0) continue;
      const HostEdge& edge = e->first;
      auto& src_ci = seg.ci.per_node[edge.first];
      src_ci.edge_counts[edge] += n;
      src_ci.total += n;
      auto& dst_ci = seg.ci.per_node[edge.second];
      dst_ci.edge_counts[edge] += n;
      dst_ci.total += n;
    }

    // Only triples that passed the window gates can pass the (tighter)
    // segment gates, so re-bucketing the window's survivors is exact.
    for (const auto& [triple, window_pair] : sig.dd.per_pair) {
      const auto& [a, b, c] = triple;
      const auto in_n = count_in_range(
          st.edges.find(HostEdge{a, b})->second.starts, t0, t1);
      if (in_n < app.min_edge_flows) continue;
      const auto out_n = count_in_range(
          st.edges.find(HostEdge{b, c})->second.starts, t0, t1);
      if (out_n < app.min_edge_flows) continue;
      const auto& pairs = st.triples.find(triple)->second.pairs;
      std::uint64_t samples = 0;
      for (const auto& [t_in, t_out] : pairs) {
        if (t_out >= t0 && t_out < t1 && t_in >= t0) ++samples;
      }
      if (samples < app.min_edge_flows) continue;
      DelayDistributionSig::PairDd pair;
      pair.hist = Histogram{app.dd_bin_ms};
      for (const auto& [t_in, t_out] : pairs) {
        if (t_out >= t0 && t_out < t1 && t_in >= t0) {
          pair.hist.add(to_millis(t_out - t_in));
        }
      }
      pair.in_flows = in_n;
      pair.out_flows = out_n;
      pair.samples = samples;
      pair.peak_ms = pair.hist.top_peak().center;
      pair.mean_ms = hist_mean(pair.hist);
      seg.dd.per_pair[triple] = std::move(pair);
    }

    if (seg_total > 0 && t1 > t0) {
      const auto epochs =
          static_cast<std::size_t>((t1 - t0) / app.pc_epoch) + 1;
      struct EdgeSeries {
        const HostEdge* edge;
        std::uint64_t n;
        std::vector<double> series;
      };
      std::vector<EdgeSeries> series;
      std::vector<double> group_series;
      if (app.pc_control_for_group) group_series.assign(epochs, 0.0);
      for (const auto* e : work.edges) {
        const auto& starts = e->second.starts;
        const auto lo = std::lower_bound(starts.begin(), starts.end(), t0);
        const auto hi = std::lower_bound(lo, starts.end(), t1);
        if (lo == hi) continue;
        EdgeSeries es{&e->first, static_cast<std::uint64_t>(hi - lo),
                      std::vector<double>(epochs, 0.0)};
        for (auto it = lo; it != hi; ++it) {
          const auto ep = static_cast<std::size_t>((*it - t0) / app.pc_epoch);
          if (ep < epochs) {
            es.series[ep] += 1.0;
            if (app.pc_control_for_group) group_series[ep] += 1.0;
          }
        }
        series.push_back(std::move(es));
      }
      for (const auto& in : series) {
        if (in.n < app.min_edge_flows) continue;
        const Ipv4 node = in.edge->second;
        for (const auto& out_s : series) {
          if (out_s.edge->first != node) continue;
          if (out_s.edge->second == in.edge->first) continue;
          if (out_s.n < app.min_edge_flows) continue;
          double rho;
          if (app.pc_control_for_group) {
            std::vector<double> control(epochs, 0.0);
            for (std::size_t ep = 0; ep < epochs; ++ep) {
              control[ep] = group_series[ep] - in.series[ep] - out_s.series[ep];
            }
            rho = partial_correlation(in.series, out_s.series, control);
          } else {
            rho = pearson(in.series, out_s.series);
          }
          seg.pc.rho[EdgePair{in.edge->first, node, out_s.edge->second}] = rho;
        }
      }
    }
  }

  analyze_group_stability(per_segment, config, out);
}

/// Infrastructure signatures from the incremental state. CRT and UTIL are
/// already running sums; PT/ISL walk the completed occurrences without the
/// from-scratch extractor's per-occurrence copies: consecutive same-switch
/// hops collapse on the fly, topology edges dedupe on integer codes before
/// any node string is built, and ISL stats accumulate in the identical
/// walk order.
InfraSignatures assemble_infra(const IncrementalWindowState& st) {
  InfraSignatures out;

  // Integer node codes: high bit selects switch vs host; strings are built
  // once per distinct node that actually reaches the graph.
  constexpr std::uint64_t kSwitchBit = 1ULL << 32;
  std::unordered_map<std::uint64_t, PtNode> names;
  const auto name_of = [&names](std::uint64_t code) -> const PtNode& {
    auto it = names.find(code);
    if (it == names.end()) {
      PtNode n = (code & kSwitchBit)
                     ? pt_switch_node(SwitchId{static_cast<std::uint32_t>(code)})
                     : pt_host_node(Ipv4{static_cast<std::uint32_t>(code)});
      it = names.emplace(code, std::move(n)).first;
    }
    return it->second;
  };
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  const auto add_undirected = [&](std::uint64_t u, std::uint64_t v) {
    const auto [lo, hi] = std::minmax(u, v);
    if (!seen.insert({lo, hi}).second) return;
    // Orientation canonicalizes on the *string* order, exactly like the
    // from-scratch extractor ("host:..." < "sw:...", "sw:10" < "sw:9").
    const PtNode& a = name_of(u);
    const PtNode& b = name_of(v);
    if (a <= b) {
      out.pt.graph.add_edge(a, b);
    } else {
      out.pt.graph.add_edge(b, a);
    }
  };

  std::vector<const SwitchHop*> walk;
  for (const auto& occ : st.occurrences) {
    if (occ.hops.empty()) continue;
    walk.clear();
    for (const auto& hop : occ.hops) {
      if (!walk.empty() && walk.back()->sw == hop.sw) continue;
      walk.push_back(&hop);
    }
    std::size_t answered = 0;
    while (answered < walk.size() && walk[answered]->flow_mod_ts >= 0) {
      ++answered;
    }
    add_undirected(occ.key.src_ip.raw(), kSwitchBit | walk.front()->sw.value);
    if (answered == walk.size()) {
      add_undirected(kSwitchBit | walk.back()->sw.value, occ.key.dst_ip.raw());
    }
    for (std::size_t i = 0; i + 1 < answered; ++i) {
      const SwitchHop& a = *walk[i];
      const SwitchHop& b = *walk[i + 1];
      add_undirected(kSwitchBit | a.sw.value, kSwitchBit | b.sw.value);
      if (b.packet_in_ts >= a.flow_mod_ts) {
        out.isl.latency_ms[{a.sw.value, b.sw.value}].add(
            to_millis(b.packet_in_ts - a.flow_mod_ts));
      }
    }
  }

  out.crt.response_ms = st.crt_response_ms;
  for (const auto& [key, bps] : st.per_poll_bps) {
    out.load.mbps[key.first].add(bps / 1e6);
  }
  return out;
}

}  // namespace

void IncrementalWindowState::reset() {
  active = false;
  fallback = false;
  begin = 0;
  end = 0;
  last_ts = 0;
  events = 0;
  occurrences.clear();
  open.clear();
  edges.clear();
  triples.clear();
  dd_samples = 0;
  in_recent.clear();
  out_recent.clear();
  crt_response_ms = RunningStats{};
  per_poll_bps.clear();
}

IncrementalModeler::IncrementalModeler(ModelConfig config,
                                       std::shared_ptr<Executor> executor)
    : config_(std::move(config)),
      supported_(supported(config_)),
      executor_(std::move(executor)) {
  if (!executor_) executor_ = std::make_shared<Executor>(0);
}

bool IncrementalModeler::supported(const ModelConfig& config) {
  return config.app.min_edge_flows >= 1;
}

void IncrementalModeler::feed(IncrementalWindowState& st,
                              const of::ControlEvent& event) const {
  if (!supported_) return;
  if (!st.active) {
    st.active = true;
    st.begin = event.ts;
    st.last_ts = event.ts;
  } else if (event.ts < st.last_ts) {
    // The oracle sorts the window log before parsing; an in-window
    // timestamp regression means sorted order differs from feed order, so
    // the aggregates no longer replay the oracle's computation.
    st.fallback = true;
  }
  if (st.fallback) return;
  st.last_ts = event.ts;
  st.end = event.ts;
  ++st.events;

  if (const auto* pin = std::get_if<of::PacketIn>(&event.msg)) {
    auto it = st.open.find(pin->key);
    if (it == st.open.end() ||
        event.ts - it->second.last_ts > grouping_window_) {
      FlowOccurrence occ;
      occ.key = pin->key;
      occ.first_ts = event.ts;
      st.occurrences.push_back(std::move(occ));
      it = st.open
               .insert_or_assign(
                   pin->key,
                   IncrementalWindowState::Open{st.occurrences.size() - 1,
                                                event.ts})
               .first;
      on_start(st, pin->key, event.ts);
    }
    auto& occ = st.occurrences[it->second.index];
    occ.hops.push_back(
        SwitchHop{pin->sw, pin->in_port, PortId{}, event.ts, -1});
    it->second.last_ts = event.ts;
  } else if (const auto* fm = std::get_if<of::FlowMod>(&event.msg)) {
    auto it = st.open.find(fm->key);
    if (it == st.open.end()) return;
    auto& occ = st.occurrences[it->second.index];
    for (auto hop = occ.hops.rbegin(); hop != occ.hops.rend(); ++hop) {
      if (hop->sw == fm->sw && hop->flow_mod_ts < 0) {
        hop->flow_mod_ts = event.ts;
        hop->out_port = fm->out_port;
        st.crt_response_ms.add(to_millis(event.ts - hop->packet_in_ts));
        break;
      }
    }
    it->second.last_ts = event.ts;
  } else if (const auto* fr = std::get_if<of::FlowRemoved>(&event.msg)) {
    auto& agg = st.edges[HostEdge{fr->key.src_ip, fr->key.dst_ip}];
    agg.bytes.add(static_cast<double>(fr->byte_count));
    agg.duration_ms.add(to_millis(fr->duration));
    ++agg.removed;
  } else if (const auto* fs = std::get_if<of::FlowStatsReply>(&event.msg)) {
    if (fs->age > 0) {
      st.per_poll_bps[{fs->sw.value, event.ts}] +=
          static_cast<double>(fs->byte_count) * 8.0 / to_seconds(fs->age);
    }
  }
}

void IncrementalModeler::on_start(IncrementalWindowState& st,
                                  const of::FlowKey& key, SimTime ts) const {
  const Ipv4 src = key.src_ip;
  const Ipv4 dst = key.dst_ip;
  st.edges[HostEdge{src, dst}].starts.push_back(ts);

  // Streaming DD pairing. Every (in-flow, out-flow) pair the from-scratch
  // extractor would form with 0 <= t_out - t_in <= dd_window is recorded
  // exactly once, at the arrival of the later of the two flows.
  const SimDuration window = config_.app.dd_window;
  if (auto it = st.in_recent.find(src); it != st.in_recent.end()) {
    // This start is the out-flow of `src`: pair with earlier flows into it.
    auto& dq = it->second;
    while (!dq.empty() && ts - dq.front().second > window) dq.pop_front();
    for (const auto& [a, t_in] : dq) {
      if (a == dst) continue;  // Pure replies carry no dependency signal.
      record_pair(st, EdgePair{a, src, dst}, t_in, ts);
    }
  }
  if (auto it = st.out_recent.find(dst); it != st.out_recent.end()) {
    // This start is the in-flow into `dst`: an out-flow of `dst` already
    // processed can only pair with it when the timestamps are equal
    // (anything earlier would make the delta negative).
    auto& dq = it->second;
    while (!dq.empty() && dq.front().second < ts) dq.pop_front();
    for (const auto& [d, t_out] : dq) {
      if (d == src) continue;
      record_pair(st, EdgePair{src, dst, d}, ts, t_out);
    }
  }
  st.in_recent[dst].emplace_back(src, ts);
  st.out_recent[src].emplace_back(dst, ts);
}

void IncrementalModeler::record_pair(IncrementalWindowState& st,
                                     const EdgePair& triple, SimTime t_in,
                                     SimTime t_out) const {
  auto it = st.triples.find(triple);
  if (it == st.triples.end()) {
    it = st.triples
             .try_emplace(triple,
                          IncrementalWindowState::TripleAgg{
                              config_.app.dd_bin_ms})
             .first;
  }
  it->second.hist.add(to_millis(t_out - t_in));
  it->second.pairs.emplace_back(t_in, t_out);
  if (++st.dd_samples > kMaxDdSamples) st.fallback = true;
}

BehaviorModel IncrementalModeler::finalize(
    const IncrementalWindowState& st) const {
  const obs::Span span("model");
  static obs::LatencyHistogram& build_ms =
      obs::Registry::global().histogram("model.build_ms", 5.0);
  const obs::ScopedTimer timer(build_ms);
  static obs::Counter& builds = obs::Registry::global().counter("model.builds");
  static obs::Counter& events =
      obs::Registry::global().counter("model.events_consumed");
  static obs::Counter& finalizes =
      obs::Registry::global().counter("model.incremental_finalizes");
  builds.inc();
  events.inc(st.events);
  finalizes.inc();

  BehaviorModel model;
  model.begin = st.begin;
  model.end = st.end;
  model.flow_starts.reserve(st.occurrences.size());
  for (const auto& occ : st.occurrences) {
    model.flow_starts.push_back(of::TimedFlow{occ.first_ts, occ.key});
  }

  const AppGroups groups =
      discover_groups(model.flow_starts, config_.special_nodes);
  std::map<Ipv4, int> index_of;
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    for (const Ipv4 ip : groups.groups[g]) {
      index_of.emplace(ip, static_cast<int>(g));
    }
  }

  // Bucket the global aggregate maps per group; map order per bucket is the
  // per-group sorted order the from-scratch extractor iterates in.
  const std::size_t group_count = groups.groups.size();
  std::vector<GroupWork> work(group_count);
  for (const auto& entry : st.edges) {
    const auto src = index_of.find(entry.first.first);
    if (src == index_of.end()) continue;
    const auto dst = index_of.find(entry.first.second);
    if (dst == index_of.end() || dst->second != src->second) continue;
    auto& w = work[static_cast<std::size_t>(src->second)];
    w.edges.push_back(&entry);
    w.start_total += entry.second.starts.size();
  }
  for (const auto& entry : st.triples) {
    const auto ia = index_of.find(std::get<0>(entry.first));
    if (ia == index_of.end()) continue;
    const auto ib = index_of.find(std::get<1>(entry.first));
    if (ib == index_of.end() || ib->second != ia->second) continue;
    const auto ic = index_of.find(std::get<2>(entry.first));
    if (ic == index_of.end() || ic->second != ia->second) continue;
    work[static_cast<std::size_t>(ia->second)].triples.push_back(&entry);
  }

  std::future<void> infra = executor_->submit([&model, &st] {
    const obs::Span infra_span("model/infra");
    model.infra = assemble_infra(st);
  });

  model.groups.resize(group_count);
  const int segments = std::max(2, config_.stability_segments);
  {
    const obs::Span sig_span("model/signatures");
    executor_->parallel_for(group_count, [&](std::size_t g) {
      assemble_group(st, work[g], groups.groups[g], model.begin, model.end,
                     segments, config_, model.groups[g]);
    });
  }
  infra.get();
  return model;
}

}  // namespace flowdiff::core
