# Empty dependencies file for fig10_dd_robustness.
# This may be replaced when dependencies are built.
