#include "workload/incast.h"

#include <cmath>
#include <utility>

namespace flowdiff::wl {

IncastTraffic::IncastTraffic(sim::Network& net, std::vector<HostId> workers,
                             HostId aggregator, IncastSpec spec, Rng rng)
    : net_(net),
      workers_(std::move(workers)),
      aggregator_(aggregator),
      spec_(spec),
      rng_(rng),
      next_src_port_(workers_.size(), 30000) {}

void IncastTraffic::start(SimTime begin, SimTime end) {
  const auto bytes = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(spec_.response_bytes) *
                   spec_.intensity));
  if (bytes == 0 || workers_.empty() || end <= begin ||
      spec_.burst_interval <= 0) {
    return;
  }
  const Ipv4 dst = net_.topology().host(aggregator_).ip;
  for (SimTime t = begin; t < end; t += spec_.burst_interval) {
    ++bursts_sent_;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const Ipv4 src = net_.topology().host(workers_[w]).ip;
      const std::uint16_t src_port = next_src_port_[w];
      next_src_port_[w] = next_src_port_[w] >= 64999
                              ? std::uint16_t{30000}
                              : static_cast<std::uint16_t>(src_port + 1);
      const SimTime at = t + rng_.uniform_int(0, spec_.sync_jitter);
      net_.events().schedule(at, [this, src, dst, src_port, bytes] {
        sim::FlowSpec flow;
        flow.key =
            of::FlowKey{src, dst, src_port, spec_.dst_port, spec_.proto};
        flow.bytes = bytes;
        flow.duration = spec_.response_duration;
        if (net_.start_flow(std::move(flow)) != 0) ++flows_sent_;
      });
    }
  }
}

}  // namespace flowdiff::wl
