file(REMOVE_RECURSE
  "CMakeFiles/flowdiff_openflow.dir/control_log.cc.o"
  "CMakeFiles/flowdiff_openflow.dir/control_log.cc.o.d"
  "CMakeFiles/flowdiff_openflow.dir/flow_key.cc.o"
  "CMakeFiles/flowdiff_openflow.dir/flow_key.cc.o.d"
  "CMakeFiles/flowdiff_openflow.dir/flow_table.cc.o"
  "CMakeFiles/flowdiff_openflow.dir/flow_table.cc.o.d"
  "CMakeFiles/flowdiff_openflow.dir/log_io.cc.o"
  "CMakeFiles/flowdiff_openflow.dir/log_io.cc.o.d"
  "CMakeFiles/flowdiff_openflow.dir/match.cc.o"
  "CMakeFiles/flowdiff_openflow.dir/match.cc.o.d"
  "CMakeFiles/flowdiff_openflow.dir/messages.cc.o"
  "CMakeFiles/flowdiff_openflow.dir/messages.cc.o.d"
  "libflowdiff_openflow.a"
  "libflowdiff_openflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowdiff_openflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
