// Distributed controller deployment (paper SectionVI).
//
// Switches are partitioned across k controller instances; each instance
// keeps its own control log, and merged_log() synchronizes them into one
// data-center-wide log for FlowDiff, mirroring the FlowVisor/Onix-style
// setups the paper cites.
#pragma once

#include <memory>
#include <vector>

#include "controller/controller.h"

namespace flowdiff::ctrl {

class DistributedControllerSet : public sim::ControllerIface {
 public:
  DistributedControllerSet(sim::Network& net, std::size_t instances,
                           ControllerConfig config);

  void handle_packet_in(const of::PacketIn& msg) override;
  void handle_flow_removed(const of::FlowRemoved& msg) override;

  [[nodiscard]] std::size_t instance_count() const {
    return controllers_.size();
  }
  [[nodiscard]] Controller& instance(std::size_t i) { return *controllers_[i]; }

  /// Per-instance logs merged into one time-ordered log.
  [[nodiscard]] of::ControlLog merged_log() const;

  void clear_logs();

 private:
  Controller& controller_for(SwitchId sw);

  std::vector<std::unique_ptr<Controller>> controllers_;
};

}  // namespace flowdiff::ctrl
