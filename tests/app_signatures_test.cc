#include "flowdiff/app_signatures.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace flowdiff::core {
namespace {

const Ipv4 kA(10, 0, 0, 1);
const Ipv4 kB(10, 0, 0, 2);
const Ipv4 kC(10, 0, 0, 3);

FlowOccurrence occ(Ipv4 src, Ipv4 dst, SimTime ts,
                   std::uint16_t sport = 40000) {
  FlowOccurrence o;
  o.key = of::FlowKey{src, dst, sport, 80, of::Proto::kTcp};
  o.first_ts = ts;
  return o;
}

/// A three-node chain A -> B -> C: n requests, B forwards after proc_delay.
ParsedLog chain_log(int n, SimDuration proc_delay, SimDuration gap,
                    std::uint16_t base_port = 40000) {
  ParsedLog log;
  log.begin = 0;
  for (int i = 0; i < n; ++i) {
    const SimTime t = i * gap;
    const auto sport = static_cast<std::uint16_t>(base_port + i);
    log.occurrences.push_back(occ(kA, kB, t, sport));
    log.occurrences.push_back(occ(kB, kC, t + proc_delay, sport));
  }
  log.end = n * gap + proc_delay;
  std::sort(log.occurrences.begin(), log.occurrences.end(),
            [](const FlowOccurrence& a, const FlowOccurrence& b) {
              return a.first_ts < b.first_ts;
            });
  return log;
}

AppSignatureConfig config() {
  AppSignatureConfig c;
  c.min_edge_flows = 3;
  return c;
}

TEST(ConnectivityGraphSig, BuildsEdgesAboveMinFlows) {
  const ParsedLog log = chain_log(10, 50 * kMillisecond, kSecond);
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  EXPECT_TRUE(sig.cg.graph.has_edge(kA, kB));
  EXPECT_TRUE(sig.cg.graph.has_edge(kB, kC));
  EXPECT_FALSE(sig.cg.graph.has_edge(kA, kC));
}

TEST(ConnectivityGraphSig, SparseEdgesFiltered) {
  ParsedLog log = chain_log(10, 50 * kMillisecond, kSecond);
  log.occurrences.push_back(occ(kA, kC, 100));  // One-off flow.
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  EXPECT_FALSE(sig.cg.graph.has_edge(kA, kC));
}

TEST(ConnectivityGraphSig, DiffFindsAddedAndRemoved) {
  const auto base = extract_group_signatures(
      chain_log(10, 50 * kMillisecond, kSecond), {kA, kB, kC}, config());
  ParsedLog other_log = chain_log(10, 50 * kMillisecond, kSecond);
  // Remove B->C flows, add C->A.
  std::erase_if(other_log.occurrences, [](const FlowOccurrence& o) {
    return o.key.src_ip == kB;
  });
  for (int i = 0; i < 5; ++i) {
    other_log.occurrences.push_back(
        occ(kC, kA, i * kSecond, static_cast<std::uint16_t>(41000 + i)));
  }
  const auto cur =
      extract_group_signatures(other_log, {kA, kB, kC}, config());
  const auto diff = base.cg.diff(cur.cg);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0], (HostEdge{kC, kA}));
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0], (HostEdge{kB, kC}));
}

TEST(FlowStatsSig, CountsAndRate) {
  const ParsedLog log = chain_log(20, 50 * kMillisecond, kSecond / 2);
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  const auto& ab = sig.fs.per_edge.at(HostEdge{kA, kB});
  EXPECT_EQ(ab.flow_count, 20u);
  EXPECT_EQ(ab.first_ts, 0);
  // 40 flows over ~10s -> about 4 flows/sec group-wide.
  EXPECT_NEAR(sig.fs.flows_per_sec.mean(), 4.0, 1.0);
}

TEST(FlowStatsSig, BytesFromFlowRemoved) {
  ParsedLog log = chain_log(10, 50 * kMillisecond, kSecond);
  for (int i = 0; i < 6; ++i) {
    RemovedRecord rec;
    rec.sw = SwitchId{1};
    rec.key = of::FlowKey{kA, kB, 40000, 80, of::Proto::kTcp};
    rec.ts = i * kSecond;
    rec.bytes = 10000 + i * 100;
    rec.duration = 200 * kMillisecond;
    log.removed.push_back(rec);
  }
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  const auto& ab = sig.fs.per_edge.at(HostEdge{kA, kB});
  EXPECT_EQ(ab.bytes.count(), 6u);
  EXPECT_NEAR(ab.bytes.mean(), 10250.0, 1.0);
  EXPECT_DOUBLE_EQ(ab.duration_ms.mean(), 200.0);
}

TEST(ComponentInteractionSig, NormalizedCounts) {
  const ParsedLog log = chain_log(10, 50 * kMillisecond, kSecond);
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  const auto& b = sig.ci.per_node.at(kB);
  // B sees 10 in (A->B) and 10 out (B->C).
  EXPECT_EQ(b.total, 20u);
  EXPECT_DOUBLE_EQ(b.normalized(HostEdge{kA, kB}), 0.5);
  EXPECT_DOUBLE_EQ(b.normalized(HostEdge{kB, kC}), 0.5);
  EXPECT_DOUBLE_EQ(b.normalized(HostEdge{kA, kC}), 0.0);
}

TEST(ComponentInteractionSig, Chi2ZeroForIdenticalShape) {
  const auto a = extract_group_signatures(
      chain_log(10, 50 * kMillisecond, kSecond), {kA, kB, kC}, config());
  const auto b = extract_group_signatures(
      chain_log(40, 50 * kMillisecond, kSecond / 4), {kA, kB, kC}, config());
  // Four times the traffic, same shape: normalized chi2 ~ 0.
  EXPECT_NEAR(ComponentInteractionSig::chi2_at_node(
                  a.ci.per_node.at(kB), b.ci.per_node.at(kB)),
              0.0, 1e-9);
}

TEST(ComponentInteractionSig, Chi2DetectsShapeShift) {
  const auto base = extract_group_signatures(
      chain_log(10, 50 * kMillisecond, kSecond), {kA, kB, kC}, config());
  // Now B stops forwarding: only incoming flows remain.
  ParsedLog broken = chain_log(10, 50 * kMillisecond, kSecond);
  std::erase_if(broken.occurrences, [](const FlowOccurrence& o) {
    return o.key.src_ip == kB;
  });
  const auto cur =
      extract_group_signatures(broken, {kA, kB, kC}, config());
  EXPECT_GT(ComponentInteractionSig::chi2_at_node(base.ci.per_node.at(kB),
                                                  cur.ci.per_node.at(kB)),
            0.4);
}

TEST(DelayDistributionSig, RecoversProcessingDelayPeak) {
  // 55 ms processing at B with 20 ms bins: peak bin center 50 ms.
  const ParsedLog log = chain_log(50, 55 * kMillisecond, kSecond / 2);
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  const auto& dd = sig.dd.per_pair.at(EdgePair{kA, kB, kC});
  EXPECT_GT(dd.samples, 40u);
  EXPECT_DOUBLE_EQ(dd.peak_ms, 50.0);
}

TEST(DelayDistributionSig, SkipsReplyPairs) {
  // A->B followed by B->A is a reply, not a dependency chain.
  ParsedLog log;
  log.begin = 0;
  for (int i = 0; i < 10; ++i) {
    const auto sport = static_cast<std::uint16_t>(40000 + i);
    log.occurrences.push_back(occ(kA, kB, i * kSecond, sport));
    log.occurrences.push_back(
        occ(kB, kA, i * kSecond + 30 * kMillisecond, sport));
  }
  log.end = 10 * kSecond;
  const auto sig = extract_group_signatures(log, {kA, kB}, config());
  EXPECT_FALSE(sig.dd.per_pair.contains(EdgePair{kA, kB, kA}));
}

TEST(DelayDistributionSig, PeakShiftTracksExtraDelay) {
  const auto base = extract_group_signatures(
      chain_log(50, 55 * kMillisecond, kSecond / 2), {kA, kB, kC}, config());
  const auto slowed = extract_group_signatures(
      chain_log(50, 115 * kMillisecond, kSecond / 2), {kA, kB, kC},
      config());
  const double shift =
      slowed.dd.per_pair.at(EdgePair{kA, kB, kC}).peak_ms -
      base.dd.per_pair.at(EdgePair{kA, kB, kC}).peak_ms;
  EXPECT_NEAR(shift, 60.0, 20.0);  // Within a bin of the injected 60 ms.
}

TEST(PartialCorrelationSig, DependentEdgesCorrelate) {
  // Bursty arrivals: epochs with many A->B flows also have many B->C flows.
  ParsedLog log;
  log.begin = 0;
  Rng rng(5);
  std::uint16_t sport = 40000;
  for (int epoch = 0; epoch < 30; ++epoch) {
    const auto burst = 1 + rng.uniform_int(0, 8);
    for (int i = 0; i < burst; ++i) {
      const SimTime t = epoch * kSecond +
                        static_cast<SimDuration>(
                            rng.uniform(0.0, 0.4 * kSecond));
      log.occurrences.push_back(occ(kA, kB, t, sport));
      log.occurrences.push_back(
          occ(kB, kC, t + 20 * kMillisecond, sport));
      ++sport;
    }
  }
  std::sort(log.occurrences.begin(), log.occurrences.end(),
            [](const FlowOccurrence& a, const FlowOccurrence& b) {
              return a.first_ts < b.first_ts;
            });
  log.end = 30 * kSecond;
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  ASSERT_TRUE(sig.pc.rho.contains(EdgePair{kA, kB, kC}));
  EXPECT_GT(sig.pc.rho.at(EdgePair{kA, kB, kC}), 0.9);
}

TEST(PartialCorrelationSig, IndependentEdgesDoNot) {
  ParsedLog log;
  log.begin = 0;
  Rng rng(7);
  std::uint16_t sport = 40000;
  for (int epoch = 0; epoch < 40; ++epoch) {
    const auto in_burst = rng.uniform_int(0, 6);
    const auto out_burst = rng.uniform_int(0, 6);
    for (int i = 0; i < in_burst; ++i) {
      log.occurrences.push_back(occ(kA, kB, epoch * kSecond + i, sport++));
    }
    for (int i = 0; i < out_burst; ++i) {
      log.occurrences.push_back(occ(kB, kC, epoch * kSecond + i, sport++));
    }
  }
  std::sort(log.occurrences.begin(), log.occurrences.end(),
            [](const FlowOccurrence& a, const FlowOccurrence& b) {
              return a.first_ts < b.first_ts;
            });
  log.end = 40 * kSecond;
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  ASSERT_TRUE(sig.pc.rho.contains(EdgePair{kA, kB, kC}));
  EXPECT_LT(std::abs(sig.pc.rho.at(EdgePair{kA, kB, kC})), 0.5);
}

TEST(GroupSignatures, OnlyMemberFlowsContribute) {
  ParsedLog log = chain_log(10, 50 * kMillisecond, kSecond);
  const Ipv4 outsider(10, 0, 0, 9);
  for (int i = 0; i < 10; ++i) {
    log.occurrences.push_back(occ(outsider, kA, i * kSecond));
  }
  const auto sig = extract_group_signatures(log, {kA, kB, kC}, config());
  EXPECT_FALSE(sig.cg.graph.has_node(outsider));
  EXPECT_FALSE(sig.fs.per_edge.contains(HostEdge{outsider, kA}));
}

}  // namespace
}  // namespace flowdiff::core
