#include "obs/export.h"

#include <dirent.h>
#include <sys/resource.h>

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/trace.h"
#include "util/table.h"

namespace flowdiff::obs {

namespace {

/// Shortest decimal form that re-parses to the same double, preferring
/// plain fixed notation over scientific when no longer ("10", not "1e+01").
std::string num(double v) {
  char best[64];
  std::snprintf(best, sizeof(best), "%.17g", v);
  double parsed = 0.0;
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::sscanf(shorter, "%lf", &parsed) == 1 && parsed == v) {
      std::memcpy(best, shorter, sizeof(best));
      break;
    }
  }
  if (std::strchr(best, 'e') != nullptr) {
    for (int prec = 0; prec < 17; ++prec) {
      char fixed[64];
      const int len = std::snprintf(fixed, sizeof(fixed), "%.*f", prec, v);
      if (len < 0 || static_cast<std::size_t>(len) >= sizeof(fixed) ||
          static_cast<std::size_t>(len) > std::strlen(best)) {
        break;
      }
      if (std::sscanf(fixed, "%lf", &parsed) == 1 && parsed == v) {
        std::memcpy(best, fixed, sizeof(best));
        break;
      }
    }
  }
  return best;
}

std::string quote(std::string_view name) {
  // Prometheus exposition label values: backslash, double-quote, and
  // line-feed must be escaped (a raw newline would split the sample line).
  std::string out = "\"";
  for (const char c : name) {
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string escape_help(std::string_view text) {
  // # HELP text: the exposition format escapes backslash and line feed
  // (quotes stay raw — help text is not quoted).
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    if (c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string prom_name(std::string_view prefix, std::string_view name) {
  std::string out{prefix};
  out += '_';
  for (const char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

// --- Minimal parser for render_json's output -------------------------------

struct JsonParser {
  std::string_view s;
  std::size_t pos = 0;

  void ws() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }
  bool eat(char c) {
    ws();
    if (pos >= s.size() || s[pos] != c) return false;
    ++pos;
    return true;
  }
  bool peek(char c) {
    ws();
    return pos < s.size() && s[pos] == c;
  }
  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\' && pos + 1 < s.size()) ++pos;
      out += s[pos++];
    }
    if (!eat('"')) return std::nullopt;
    return out;
  }
  std::optional<double> number() {
    ws();
    const std::size_t start = pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) != 0 ||
            s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    double value = 0.0;
    if (std::sscanf(std::string(s.substr(start, pos - start)).c_str(), "%lf",
                    &value) != 1) {
      return std::nullopt;
    }
    return value;
  }

  /// Parses {"key": <number>, ...} into the given field map; every listed
  /// key must appear. `counts` (if non-null) receives an optional
  /// "counts": [..] array member.
  bool fields(std::initializer_list<std::pair<const char*, double*>> wanted,
              std::vector<std::uint64_t>* counts) {
    if (!eat('{')) return false;
    std::size_t found = 0;
    if (!peek('}')) {
      do {
        const auto key = string();
        if (!key || !eat(':')) return false;
        if (counts != nullptr && *key == "counts") {
          if (!eat('[')) return false;
          if (!peek(']')) {
            do {
              const auto v = number();
              if (!v) return false;
              counts->push_back(static_cast<std::uint64_t>(*v));
            } while (eat(','));
          }
          if (!eat(']')) return false;
          continue;
        }
        bool matched = false;
        for (const auto& [name, slot] : wanted) {
          if (*key == name) {
            const auto v = number();
            if (!v) return false;
            *slot = *v;
            matched = true;
            ++found;
            break;
          }
        }
        if (!matched) return false;
      } while (eat(','));
    }
    return eat('}') && found == wanted.size();
  }
};

}  // namespace

Snapshot snapshot() {
  Snapshot snap = Registry::global().snapshot();
  snap.spans = Trace::global().aggregates();
  return snap;
}

namespace {
/// Static-init epoch: uptime is measured from library load (≈ process
/// start), not from the first scrape.
const std::chrono::steady_clock::time_point g_process_epoch =
    std::chrono::steady_clock::now();
}  // namespace

void update_process_gauges() {
  // Early out before the static registrations: a disabled process never
  // grows process.* entries in the registry (keeps unit-test snapshots
  // and sampled series exactly as they were).
  if (!enabled()) return;
  static Gauge& uptime = Registry::global().gauge("process.uptime_s");
  static Gauge& peak_rss = Registry::global().gauge("process.peak_rss_bytes");
  static Gauge& open_fds = Registry::global().gauge("process.open_fds");
  uptime.set(std::chrono::duration_cast<std::chrono::seconds>(
                 std::chrono::steady_clock::now() - g_process_epoch)
                 .count());
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // Linux reports ru_maxrss in kilobytes.
    peak_rss.set(static_cast<std::int64_t>(usage.ru_maxrss) * 1024);
  }
  std::int64_t fds = 0;
  if (DIR* dir = opendir("/proc/self/fd"); dir != nullptr) {
    while (readdir(dir) != nullptr) ++fds;
    closedir(dir);
    fds -= 3;  // ".", "..", and the directory fd itself.
    if (fds < 0) fds = 0;
    open_fds.set(fds);
  }
}

std::string render_table(const Snapshot& snap) {
  if (snap.empty()) {
    return "observability: nothing recorded (enable with --stats/--trace or "
           "obs::set_enabled)\n";
  }
  std::string out;
  if (!snap.counters.empty()) {
    TextTable t({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      t.add_row({name, std::to_string(value)});
    }
    out += "== counters ==\n" + t.render();
  }
  if (!snap.gauges.empty()) {
    TextTable t({"gauge", "value", "peak"});
    for (const auto& [name, g] : snap.gauges) {
      t.add_row({name, std::to_string(g.value), std::to_string(g.peak)});
    }
    if (!out.empty()) out += '\n';
    out += "== gauges ==\n" + t.render();
  }
  if (!snap.histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "p50", "p95", "min", "max"});
    for (const auto& [name, h] : snap.histograms) {
      t.add_row({name, std::to_string(h.count), fmt_double(h.mean()),
                 fmt_double(h.quantile(0.5)), fmt_double(h.quantile(0.95)),
                 fmt_double(h.min), fmt_double(h.max)});
    }
    if (!out.empty()) out += '\n';
    out += "== histograms ==\n" + t.render();
  }
  if (!snap.spans.empty()) {
    TextTable t({"span", "count", "total_ms", "mean_ms", "max_ms"});
    for (const auto& [name, s] : snap.spans) {
      const double mean =
          s.count == 0 ? 0.0 : s.total_ms / static_cast<double>(s.count);
      t.add_row({name, std::to_string(s.count), fmt_double(s.total_ms),
                 fmt_double(mean), fmt_double(s.max_ms)});
    }
    if (!out.empty()) out += '\n';
    out += "== spans ==\n" + t.render();
  }
  return out;
}

std::string render_json(const Snapshot& snap) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : snap.gauges) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": {\"value\": " + std::to_string(g.value) +
           ", \"peak\": " + std::to_string(g.peak) + "}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": {\"bin_width\": " + num(h.bin_width) +
           ", \"origin\": " + num(h.origin) +
           ", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + num(h.sum) + ", \"min\": " + num(h.min) +
           ", \"max\": " + num(h.max) + ", \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": {";
  first = true;
  for (const auto& [name, s] : snap.spans) {
    out += first ? "\n" : ",\n";
    out += "    " + quote(name) + ": {\"count\": " + std::to_string(s.count) +
           ", \"total_ms\": " + num(s.total_ms) +
           ", \"max_ms\": " + num(s.max_ms) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string render_prometheus(const Snapshot& snap, std::string_view prefix) {
  // promtool-friendly exposition: every metric family leads with a # HELP
  // line (the registry carries no descriptions, so it names the source
  // instrument) followed by its # TYPE line.
  const auto help = [](const std::string& metric, std::string_view kind,
                       std::string_view source) {
    return "# HELP " + metric + " FlowDiff " + std::string(kind) + " '" +
           escape_help(source) + "'\n";
  };
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string metric = prom_name(prefix, name);
    out += help(metric, "counter", name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, g] : snap.gauges) {
    const std::string metric = prom_name(prefix, name);
    out += help(metric, "gauge", name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(g.value) + "\n";
    out += help(metric + "_peak", "gauge peak watermark of", name);
    out += "# TYPE " + metric + "_peak gauge\n";
    out += metric + "_peak " + std::to_string(g.peak) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string metric = prom_name(prefix, name);
    out += help(metric, "histogram", name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out += metric + "_bucket{le=\"" +
             num(h.origin + h.bin_width * static_cast<double>(i + 1)) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += metric + "_sum " + num(h.sum) + "\n";
    out += metric + "_count " + std::to_string(h.count) + "\n";
  }
  // Span aggregates: one family per statistic, samples grouped under their
  // HELP/TYPE header as the exposition format requires.
  if (!snap.spans.empty()) {
    const std::string base{prefix};
    out += "# HELP " + base + "_span_count FlowDiff tracing span count\n";
    out += "# TYPE " + base + "_span_count gauge\n";
    for (const auto& [name, s] : snap.spans) {
      out += base + "_span_count{span=" + quote(name) + "} " +
             std::to_string(s.count) + "\n";
    }
    out += "# HELP " + base +
           "_span_total_ms FlowDiff tracing span total wall ms\n";
    out += "# TYPE " + base + "_span_total_ms gauge\n";
    for (const auto& [name, s] : snap.spans) {
      out += base + "_span_total_ms{span=" + quote(name) + "} " +
             num(s.total_ms) + "\n";
    }
    out += "# HELP " + base +
           "_span_max_ms FlowDiff tracing span max wall ms\n";
    out += "# TYPE " + base + "_span_max_ms gauge\n";
    for (const auto& [name, s] : snap.spans) {
      out += base + "_span_max_ms{span=" + quote(name) + "} " +
             num(s.max_ms) + "\n";
    }
  }
  return out;
}

std::optional<Snapshot> parse_json(std::string_view text) {
  JsonParser p{text};
  Snapshot snap;
  if (!p.eat('{')) return std::nullopt;

  auto section = [&p](const char* expect) -> bool {
    const auto key = p.string();
    return key && *key == expect && p.eat(':') && p.eat('{');
  };

  if (!section("counters")) return std::nullopt;
  if (!p.peek('}')) {
    do {
      const auto name = p.string();
      if (!name || !p.eat(':')) return std::nullopt;
      const auto value = p.number();
      if (!value) return std::nullopt;
      snap.counters.emplace_back(*name,
                                 static_cast<std::uint64_t>(*value));
    } while (p.eat(','));
  }
  if (!p.eat('}') || !p.eat(',')) return std::nullopt;

  if (!section("gauges")) return std::nullopt;
  if (!p.peek('}')) {
    do {
      const auto name = p.string();
      if (!name || !p.eat(':')) return std::nullopt;
      double value = 0.0;
      double peak = 0.0;
      if (!p.fields({{"value", &value}, {"peak", &peak}}, nullptr)) {
        return std::nullopt;
      }
      snap.gauges.emplace_back(
          *name, GaugeSnapshot{static_cast<std::int64_t>(value),
                               static_cast<std::int64_t>(peak)});
    } while (p.eat(','));
  }
  if (!p.eat('}') || !p.eat(',')) return std::nullopt;

  if (!section("histograms")) return std::nullopt;
  if (!p.peek('}')) {
    do {
      const auto name = p.string();
      if (!name || !p.eat(':')) return std::nullopt;
      HistogramSnapshot h;
      double count = 0.0;
      if (!p.fields({{"bin_width", &h.bin_width},
                     {"origin", &h.origin},
                     {"count", &count},
                     {"sum", &h.sum},
                     {"min", &h.min},
                     {"max", &h.max}},
                    &h.counts)) {
        return std::nullopt;
      }
      h.count = static_cast<std::uint64_t>(count);
      snap.histograms.emplace_back(*name, std::move(h));
    } while (p.eat(','));
  }
  if (!p.eat('}') || !p.eat(',')) return std::nullopt;

  if (!section("spans")) return std::nullopt;
  if (!p.peek('}')) {
    do {
      const auto name = p.string();
      if (!name || !p.eat(':')) return std::nullopt;
      SpanAggregate s;
      double count = 0.0;
      if (!p.fields({{"count", &count},
                     {"total_ms", &s.total_ms},
                     {"max_ms", &s.max_ms}},
                    nullptr)) {
        return std::nullopt;
      }
      s.count = static_cast<std::uint64_t>(count);
      snap.spans.emplace_back(*name, s);
    } while (p.eat(','));
  }
  if (!p.eat('}') || !p.eat('}')) return std::nullopt;
  return snap;
}

}  // namespace flowdiff::obs
