#include "openflow/match.h"

#include <gtest/gtest.h>

namespace flowdiff::of {
namespace {

const FlowKey kKey{Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 40000, 80,
                   Proto::kTcp};

TEST(FlowMatch, ExactMatchesOnlyThatFlow) {
  const FlowMatch m = FlowMatch::exact(kKey);
  EXPECT_TRUE(m.matches(kKey, PortId{1}));
  EXPECT_TRUE(m.matches(kKey, PortId{7}));  // in_port unset.
  FlowKey other = kKey;
  other.src_port = 40001;
  EXPECT_FALSE(m.matches(other, PortId{1}));
  EXPECT_FALSE(m.matches(kKey.reverse(), PortId{1}));
  EXPECT_TRUE(m.is_exact());
  EXPECT_EQ(m.specificity(), 5);
}

TEST(FlowMatch, HostPairWildcardsPorts) {
  const FlowMatch m = FlowMatch::host_pair(kKey.src_ip, kKey.dst_ip);
  FlowKey other = kKey;
  other.src_port = 50123;
  other.dst_port = 443;
  other.proto = Proto::kUdp;
  EXPECT_TRUE(m.matches(kKey, PortId{1}));
  EXPECT_TRUE(m.matches(other, PortId{1}));
  EXPECT_FALSE(m.matches(kKey.reverse(), PortId{1}));
  EXPECT_FALSE(m.is_exact());
  EXPECT_EQ(m.specificity(), 2);
}

TEST(FlowMatch, InPortConstrains) {
  FlowMatch m = FlowMatch::host_pair(kKey.src_ip, kKey.dst_ip);
  m.in_port = PortId{3};
  EXPECT_TRUE(m.matches(kKey, PortId{3}));
  EXPECT_FALSE(m.matches(kKey, PortId{4}));
}

TEST(FlowMatch, EmptyMatchIsCatchAll) {
  const FlowMatch m;
  EXPECT_TRUE(m.matches(kKey, PortId{1}));
  EXPECT_TRUE(m.matches(kKey.reverse(), PortId{9}));
  EXPECT_EQ(m.specificity(), 0);
}

TEST(FlowMatch, ToStringShowsWildcards) {
  const FlowMatch m = FlowMatch::host_pair(kKey.src_ip, kKey.dst_ip);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("10.0.0.1:*"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.2:*"), std::string::npos);
}

}  // namespace
}  // namespace flowdiff::of
