file(REMOVE_RECURSE
  "CMakeFiles/task_mining_test.dir/task_mining_test.cc.o"
  "CMakeFiles/task_mining_test.dir/task_mining_test.cc.o.d"
  "task_mining_test"
  "task_mining_test.pdb"
  "task_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
