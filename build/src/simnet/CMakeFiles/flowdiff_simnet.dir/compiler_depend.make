# Empty compiler generated dependencies file for flowdiff_simnet.
# This may be replaced when dependencies are built.
